"""Tests for the runtime shape/dtype/finiteness contracts layer."""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import contracts
from repro.contracts import ContractViolation, contracts_enabled, shape_contract
from repro.core.wrapping import wrap_forward
from repro.linalg import qr_nopivot

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def make_checked():
    @shape_contract("(n,n)", "(n,)", dtype=np.float64, finite=True)
    def solve_like(a: np.ndarray, b: np.ndarray, label: str = "x"):
        return a @ b

    return solve_like


class TestActiveContracts:
    """conftest.py exports REPRO_CONTRACTS=1, so contracts are live here."""

    def test_enabled_under_pytest(self):
        assert contracts_enabled()

    def test_passes_valid_input(self):
        f = make_checked()
        out = f(np.eye(3), np.ones(3))
        np.testing.assert_allclose(out, np.ones(3))

    def test_catches_wrong_ndim(self):
        f = make_checked()
        with pytest.raises(ContractViolation, match="expected 2-d"):
            f(np.ones(3), np.ones(3))

    def test_catches_symbol_mismatch_across_arguments(self):
        f = make_checked()
        with pytest.raises(ContractViolation, match="already bound"):
            f(np.eye(3), np.ones(4))

    def test_catches_nonsquare(self):
        f = make_checked()
        with pytest.raises(ContractViolation, match="already bound"):
            f(np.ones((3, 4)), np.ones(3))

    def test_catches_wrong_dtype(self):
        f = make_checked()
        with pytest.raises(ContractViolation, match="dtype"):
            f(np.eye(3, dtype=np.float32), np.ones(3))

    def test_catches_nan_and_inf(self):
        f = make_checked()
        a = np.eye(3)
        a[1, 1] = np.nan
        with pytest.raises(ContractViolation, match="non-finite"):
            f(a, np.ones(3))
        a[1, 1] = np.inf
        with pytest.raises(ContractViolation, match="non-finite"):
            f(a, np.ones(3))

    def test_fixed_integer_dims(self):
        @shape_contract("(2,n)")
        def two_rows(a: np.ndarray):
            return a.shape

        assert two_rows(np.ones((2, 5))) == (2, 5)
        with pytest.raises(ContractViolation, match="expected 2"):
            two_rows(np.ones((3, 5)))

    def test_where_mapping_names_parameters(self):
        @shape_contract(where={"b": "(n,)"})
        def f(a: np.ndarray, b: np.ndarray):
            return b

        f(np.ones((9, 9)), np.ones(4))  # a unconstrained
        with pytest.raises(ContractViolation):
            f(np.ones((9, 9)), np.ones((4, 4)))

    def test_non_ndarray_arguments_are_skipped(self):
        f = make_checked()
        # label is not an ndarray; lists are left to the function's own
        # coercion rather than rejected at the boundary.
        assert f(np.eye(2), np.ones(2), label="ok") is not None

    def test_too_many_specs_is_a_decoration_error(self):
        with pytest.raises(ValueError, match="shape spec"):

            @shape_contract("(n,n)", "(n,)")
            def only_one(a: np.ndarray):
                return a

    def test_malformed_spec_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            shape_contract("n,n")

    def test_wrapped_function_keeps_metadata(self):
        f = make_checked()
        assert f.__name__ == "solve_like"
        assert f.__contract__["finite"] is True


class TestDecoratedEntryPoints:
    """The hot paths in core/ and linalg/ really are under contract."""

    def test_wrap_forward_rejects_nan_greens(self, factory4x4, field4x4):
        g = np.full((16, 16), np.nan)
        with pytest.raises(ContractViolation, match="non-finite"):
            wrap_forward(factory4x4, field4x4, g, 0, 1)

    def test_wrap_forward_rejects_nonsquare(self, factory4x4, field4x4):
        with pytest.raises(ContractViolation, match="already bound"):
            wrap_forward(factory4x4, field4x4, np.ones((16, 4)), 0, 1)

    def test_wrap_forward_rejects_float32(self, factory4x4, field4x4):
        g = np.eye(16, dtype=np.float32)
        with pytest.raises(ContractViolation, match="dtype"):
            wrap_forward(factory4x4, field4x4, g, 0, 1)

    def test_qr_rejects_nan(self):
        a = np.eye(8)
        a[0, 0] = np.nan
        with pytest.raises(ContractViolation, match="non-finite"):
            qr_nopivot(a)

    def test_decorated_functions_carry_contract_metadata(self):
        assert hasattr(wrap_forward, "__contract__")
        assert hasattr(qr_nopivot, "__contract__")


class TestDisabledContracts:
    """REPRO_CONTRACTS unset -> the decorator is the identity function."""

    def test_decorator_returns_function_unchanged(self, monkeypatch):
        monkeypatch.delenv(contracts.ENV_VAR, raising=False)

        def raw(a: np.ndarray):
            return a

        wrapped = shape_contract("(n,n)", dtype=np.float64)(raw)
        assert wrapped is raw  # zero wrapper, therefore zero overhead

    def test_falsy_values_disable(self, monkeypatch):
        for value in ("0", "false", "off", "", "no"):
            monkeypatch.setenv(contracts.ENV_VAR, value)
            assert not contracts_enabled()
        monkeypatch.setenv(contracts.ENV_VAR, "1")
        assert contracts_enabled()

    def test_disabled_import_leaves_hot_paths_bare(self):
        """In a fresh interpreter without REPRO_CONTRACTS, the decorated
        entry points import as plain functions (no __wrapped__)."""
        code = (
            "import os; os.environ.pop('REPRO_CONTRACTS', None)\n"
            "from repro.core.wrapping import wrap_forward\n"
            "from repro.linalg import qr_nopivot\n"
            "assert not hasattr(wrap_forward, '__wrapped__')\n"
            "assert not hasattr(qr_nopivot, '__wrapped__')\n"
            "print('BARE')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
        )
        assert out.returncode == 0, out.stderr
        assert "BARE" in out.stdout


class TestOverhead:
    def test_enabled_contract_overhead_is_small_at_n64(self):
        """A contracted wrap on N=64-scale matrices costs well under 1%
        of a stratified Green's evaluation at the same size."""
        from repro.core.wrapping import wrap_forward as contracted

        n = 64
        rng = np.random.default_rng(7)
        g = rng.standard_normal((n, n))

        # Cost of one contract validation (shape + dtype + isfinite).
        reps = 200
        t0 = time.perf_counter()
        for _ in range(reps):
            contracted.__contract__  # touch, keep loop honest
            np.all(np.isfinite(g))
        contract_cost = (time.perf_counter() - t0) / reps

        # Cost of one stratified-Green's-scale linear-algebra step.
        a = rng.standard_normal((n, n))
        t0 = time.perf_counter()
        for _ in range(20):
            np.linalg.qr(a)
        qr_cost = (time.perf_counter() - t0) / 20

        assert contract_cost < 0.25 * qr_cost, (
            f"contract validation {contract_cost:.2e}s vs QR {qr_cost:.2e}s"
        )
