"""Exact HS-field enumeration reference for tiny DQMC systems.

Sums the partition function and observables over *all* 2^(L*N) discrete
HS configurations — the exact answer for the *Trotterized* theory, which
the Monte Carlo sampler must reproduce with no discretization caveat.
Exponential cost: keep L*N <= ~18.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro import BMatrixFactory, HSField, HubbardModel


@dataclass
class EnumerationResult:
    z: float
    density: float
    double_occupancy: float
    kinetic_energy: float
    spin_zz_nn: float  # nearest-neighbor C_zz


_CACHE: dict = {}


def enumerate_dqmc(model: HubbardModel) -> EnumerationResult:
    # memoize: the suite evaluates the same tiny models repeatedly, and
    # 2^(L*N) determinant sums are the test suite's dominant cost
    key = (
        repr(model.lattice), model.u, model.t, model.mu, model.beta,
        model.n_slices,
    )
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    result = _enumerate_dqmc_uncached(model)
    _CACHE[key] = result
    return result


def _enumerate_dqmc_uncached(model: HubbardModel) -> EnumerationResult:
    fac = BMatrixFactory(model)
    n, nl = model.n_sites, model.n_slices
    if n * nl > 20:
        raise ValueError("enumeration blows up beyond L*N ~ 20")
    adjacency = model.lattice.adjacency

    z = dens = docc = ke = czz = 0.0
    for bits in itertools.product([-1.0, 1.0], repeat=n * nl):
        field = HSField(np.array(bits).reshape(nl, n))
        w = 1.0
        gs = {}
        for sigma in (1, -1):
            m = np.eye(n) + fac.full_product(field, sigma)
            w *= np.linalg.det(m)
            gs[sigma] = np.linalg.inv(m)
        n_up = 1.0 - np.diag(gs[1])
        n_dn = 1.0 - np.diag(gs[-1])
        z += w
        dens += w * float((n_up + n_dn).mean())
        docc += w * float((n_up * n_dn).mean())
        ke += w * float(np.sum(adjacency * (gs[1] + gs[-1])) / n)
        # <m_0 m_1> with the same Wick contractions as measure.spin
        mz = n_up - n_dn
        c01 = mz[0] * mz[1]
        for g in (gs[1], gs[-1]):
            c01 -= g[1, 0] * g[0, 1]
        czz += w * c01
    return EnumerationResult(
        z=z,
        density=dens / z,
        double_occupancy=docc / z,
        kinetic_energy=ke / z,
        spin_zz_nn=czz / z,
    )
