"""Unit tests for simulation checkpointing."""

import numpy as np
import pytest

from repro import HubbardModel, Simulation, SquareLattice
from repro.dqmc import CheckpointError, load_checkpoint, save_checkpoint


def make_sim(seed=3, u=4.0):
    model = HubbardModel(SquareLattice(2, 2), u=u, beta=1.0, n_slices=8)
    return Simulation(model, seed=seed, cluster_size=4)


class TestRoundTrip:
    def test_resume_is_bit_exact(self, tmp_path):
        """Stop-and-resume must equal an uninterrupted run exactly."""
        path = tmp_path / "ckpt.npz"

        # uninterrupted reference
        ref = make_sim()
        ref.warmup(3)
        ref.measure_sweeps(4)
        ref.measure_sweeps(4)
        ref_obs = ref.collector.results()

        # interrupted run
        a = make_sim()
        a.warmup(3)
        a.measure_sweeps(4)
        save_checkpoint(path, a)
        b = make_sim()  # fresh process, same configuration
        load_checkpoint(path, b)
        b.measure_sweeps(4)
        got_obs = b.collector.results()

        np.testing.assert_array_equal(b.field.h, ref.field.h)
        for name in ref_obs:
            np.testing.assert_array_equal(
                np.asarray(got_obs[name].mean), np.asarray(ref_obs[name].mean)
            )

    def test_stats_restored(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        a.warmup(2)
        save_checkpoint(path, a)
        b = make_sim(seed=99)  # different seed; checkpoint overrides
        load_checkpoint(path, b)
        assert b.total_stats.proposed == a.total_stats.proposed
        assert b.total_stats.accepted == a.total_stats.accepted

    def test_rng_stream_restored(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        a.warmup(1)
        save_checkpoint(path, a)
        b = make_sim(seed=1234)
        load_checkpoint(path, b)
        assert a.rng.random() == b.rng.random()

    def test_empty_accumulator_roundtrips(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        save_checkpoint(path, a)
        b = make_sim()
        load_checkpoint(path, b)
        assert b.collector.n_measurements == 0


class TestAtomicSave:
    def test_failed_save_preserves_previous_checkpoint(self, tmp_path, monkeypatch):
        """A crash mid-save must never destroy the last good checkpoint."""
        import repro.dqmc.checkpoint as ckpt_mod

        path = tmp_path / "ckpt.npz"
        a = make_sim()
        a.warmup(2)
        save_checkpoint(path, a)
        good_bytes = path.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(ckpt_mod.np, "savez_compressed", explode)
        a.measure_sweeps(1)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(path, a)

        assert path.read_bytes() == good_bytes
        # the partial temp file must not linger either
        assert list(tmp_path.iterdir()) == [path]
        # and the surviving file still loads
        load_checkpoint(path, make_sim())

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, make_sim())
        assert list(tmp_path.iterdir()) == [path]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        """Re-saving over an existing checkpoint goes through the same
        temp-then-rename path, so the destination is always complete."""
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        save_checkpoint(path, a)
        a.warmup(1)
        save_checkpoint(path, a)
        b = make_sim()
        load_checkpoint(path, b)
        np.testing.assert_array_equal(b.field.h, a.field.h)


class TestLosslessObservables:
    def test_zero_sample_observable_survives(self, tmp_path):
        """A registered-but-unsampled observable must round-trip, not
        silently vanish from the accumulator."""
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        a.warmup(1)
        a.measure_sweeps(2)
        acc = a.collector.accumulator
        acc.restore_series("pending_obs", [])
        names_before = list(acc.names())
        assert acc.n_samples("pending_obs") == 0

        save_checkpoint(path, a)
        b = make_sim()
        load_checkpoint(path, b)

        bacc = b.collector.accumulator
        assert list(bacc.names()) == names_before
        assert bacc.n_samples("pending_obs") == 0
        assert bacc.series("pending_obs").shape == (0,)
        # zero-sample names must not break the final reduction
        reduced = bacc.reduce()
        assert "pending_obs" not in reduced
        assert any(bacc.n_samples(n) > 0 for n in bacc.names())

    def test_every_sample_series_restored_exactly(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        a.warmup(1)
        a.measure_sweeps(3)
        save_checkpoint(path, a)
        b = make_sim()
        load_checkpoint(path, b)
        acc, bacc = a.collector.accumulator, b.collector.accumulator
        assert list(bacc.names()) == list(acc.names())
        for name in acc.names():
            np.testing.assert_array_equal(bacc.series(name), acc.series(name))

    def test_load_replaces_stale_accumulator_state(self, tmp_path):
        """Loading clears anything accumulated before the restore."""
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        a.warmup(1)
        a.measure_sweeps(1)
        save_checkpoint(path, a)
        b = make_sim()
        b.warmup(1)
        b.measure_sweeps(2)  # stale pre-restore measurements
        load_checkpoint(path, b)
        assert b.collector.n_measurements == a.collector.n_measurements

    def test_singular_rejects_counter_roundtrips(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        a.warmup(1)
        a.total_stats.singular_rejects = 7
        save_checkpoint(path, a)
        b = make_sim()
        load_checkpoint(path, b)
        assert b.total_stats.singular_rejects == 7

    def test_pre_guard_checkpoint_loads_with_zero_rejects(self, tmp_path):
        """Checkpoints written before the singular-guard counter existed
        lack the stats key; loading must default it to zero."""
        import json

        path = tmp_path / "ckpt.npz"
        a = make_sim()
        a.warmup(1)
        save_checkpoint(path, a)
        with np.load(path, allow_pickle=False) as npz:
            payload = {k: npz[k] for k in npz.files}
        header = json.loads(str(payload["header"]))
        del header["stats"]["singular_rejects"]
        payload["header"] = np.array(json.dumps(header))
        np.savez_compressed(path, **payload)
        b = make_sim()
        load_checkpoint(path, b)
        assert b.total_stats.singular_rejects == 0


class TestValidation:
    def test_model_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, make_sim(u=4.0))
        with pytest.raises(CheckpointError, match="different model"):
            load_checkpoint(path, make_sim(u=6.0))

    def test_version_check(self, tmp_path):
        import json

        path = tmp_path / "ckpt.npz"
        a = make_sim()
        save_checkpoint(path, a)
        with np.load(path, allow_pickle=False) as npz:
            payload = {k: npz[k] for k in npz.files}
        header = json.loads(str(payload["header"]))
        header["version"] = 999
        payload["header"] = np.array(json.dumps(header))
        np.savez_compressed(path, **payload)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path, make_sim())
