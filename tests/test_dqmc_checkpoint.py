"""Unit tests for simulation checkpointing."""

import numpy as np
import pytest

from repro import HubbardModel, Simulation, SquareLattice
from repro.dqmc import CheckpointError, load_checkpoint, save_checkpoint


def make_sim(seed=3, u=4.0):
    model = HubbardModel(SquareLattice(2, 2), u=u, beta=1.0, n_slices=8)
    return Simulation(model, seed=seed, cluster_size=4)


class TestRoundTrip:
    def test_resume_is_bit_exact(self, tmp_path):
        """Stop-and-resume must equal an uninterrupted run exactly."""
        path = tmp_path / "ckpt.npz"

        # uninterrupted reference
        ref = make_sim()
        ref.warmup(3)
        ref.measure_sweeps(4)
        ref.measure_sweeps(4)
        ref_obs = ref.collector.results()

        # interrupted run
        a = make_sim()
        a.warmup(3)
        a.measure_sweeps(4)
        save_checkpoint(path, a)
        b = make_sim()  # fresh process, same configuration
        load_checkpoint(path, b)
        b.measure_sweeps(4)
        got_obs = b.collector.results()

        np.testing.assert_array_equal(b.field.h, ref.field.h)
        for name in ref_obs:
            np.testing.assert_array_equal(
                np.asarray(got_obs[name].mean), np.asarray(ref_obs[name].mean)
            )

    def test_stats_restored(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        a.warmup(2)
        save_checkpoint(path, a)
        b = make_sim(seed=99)  # different seed; checkpoint overrides
        load_checkpoint(path, b)
        assert b.total_stats.proposed == a.total_stats.proposed
        assert b.total_stats.accepted == a.total_stats.accepted

    def test_rng_stream_restored(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        a.warmup(1)
        save_checkpoint(path, a)
        b = make_sim(seed=1234)
        load_checkpoint(path, b)
        assert a.rng.random() == b.rng.random()

    def test_empty_accumulator_roundtrips(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        save_checkpoint(path, a)
        b = make_sim()
        load_checkpoint(path, b)
        assert b.collector.n_measurements == 0


class TestValidation:
    def test_model_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, make_sim(u=4.0))
        with pytest.raises(CheckpointError, match="different model"):
            load_checkpoint(path, make_sim(u=6.0))

    def test_version_check(self, tmp_path):
        import json

        path = tmp_path / "ckpt.npz"
        a = make_sim()
        save_checkpoint(path, a)
        with np.load(path, allow_pickle=False) as npz:
            payload = {k: npz[k] for k in npz.files}
        header = json.loads(str(payload["header"]))
        header["version"] = 999
        payload["header"] = np.array(json.dumps(header))
        np.savez_compressed(path, **payload)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path, make_sim())
