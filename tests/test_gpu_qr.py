"""Unit tests for the device-resident blocked QR and stratification."""

import numpy as np
import pytest

from repro.core import build_clusters, stratified_inverse
from repro.gpu import (
    DeviceError,
    GpuBlockedQR,
    SimulatedDevice,
    column_norms_kernel,
    gpu_stratified_decomposition,
    gpu_stratified_inverse,
    permute_columns_kernel,
)
from repro.gpu.kernels import extract_diagonal, permute_rows_kernel, scale_columns_kernel
from tests.helpers import relerr


@pytest.fixture
def dev():
    return SimulatedDevice()


class TestDeviceKernels:
    def test_column_norms(self, dev, rng):
        a_host = rng.normal(size=(30, 12))
        a = dev.set_matrix(a_host)
        np.testing.assert_allclose(
            column_norms_kernel(dev, a),
            np.linalg.norm(a_host, axis=0),
            rtol=1e-13,
        )

    def test_column_norms_only_small_transfer(self, dev, rng):
        a = dev.set_matrix(rng.normal(size=(64, 64)))
        d2h0 = dev.d2h_bytes
        column_norms_kernel(dev, a)
        assert dev.d2h_bytes - d2h0 == 64 * 8  # the norms, nothing else

    def test_permute_columns(self, dev, rng):
        a_host = rng.normal(size=(10, 8))
        piv = rng.permutation(8)
        a = dev.set_matrix(a_host)
        out = dev.alloc((10, 8))
        permute_columns_kernel(dev, a, piv, out)
        np.testing.assert_array_equal(dev.get_matrix(out), a_host[:, piv])

    def test_permute_rows(self, dev, rng):
        a_host = rng.normal(size=(8, 10))
        piv = rng.permutation(8)
        a = dev.set_matrix(a_host)
        out = dev.alloc((8, 10))
        permute_rows_kernel(dev, a, piv, out)
        np.testing.assert_array_equal(dev.get_matrix(out), a_host[piv, :])

    def test_scale_columns(self, dev, rng):
        a_host = rng.normal(size=(9, 9))
        v_host = rng.uniform(0.5, 2.0, size=9)
        a, v = dev.set_matrix(a_host), dev.set_matrix(v_host)
        out = dev.alloc((9, 9))
        scale_columns_kernel(dev, a, v, out)
        np.testing.assert_allclose(
            dev.get_matrix(out), a_host * v_host[None, :], atol=1e-14
        )

    def test_extract_diagonal(self, dev, rng):
        a_host = rng.normal(size=(7, 7))
        a = dev.set_matrix(a_host)
        np.testing.assert_array_equal(
            extract_diagonal(dev, a), np.diag(a_host)
        )


class TestGpuBlockedQR:
    @pytest.mark.parametrize("n,block", [(16, 4), (33, 8), (64, 64), (50, 7)])
    def test_factorization_correct(self, dev, rng, n, block):
        a_host = rng.normal(size=(n, n))
        a = dev.set_matrix(a_host)
        q, r = GpuBlockedQR(dev, block=block).factor(a)
        qh, rh = dev.get_matrix(q), dev.get_matrix(r)
        assert relerr(qh @ rh, a_host) < 1e-12
        np.testing.assert_allclose(qh.T @ qh, np.eye(n), atol=1e-12)
        np.testing.assert_allclose(np.tril(rh, -1), 0.0, atol=1e-13)

    def test_input_not_destroyed(self, dev, rng):
        a_host = rng.normal(size=(12, 12))
        a = dev.set_matrix(a_host)
        GpuBlockedQR(dev, block=4).factor(a)
        np.testing.assert_array_equal(dev.get_matrix(a), a_host)

    def test_rejects_non_square(self, dev):
        a = dev.alloc((4, 6))
        with pytest.raises(DeviceError):
            GpuBlockedQR(dev).factor(a)

    def test_bad_block(self, dev):
        with pytest.raises(DeviceError):
            GpuBlockedQR(dev, block=0)

    def test_uses_dgemm_for_updates(self, dev, rng):
        a = dev.set_matrix(rng.normal(size=(64, 64)))
        g0 = dev.gemm_count
        GpuBlockedQR(dev, block=16).factor(a)
        assert dev.gemm_count > g0  # trailing updates are level 3


class TestGpuStratification:
    def test_matches_cpu_prepivot(self, dev, factory4x4, field4x4):
        chain = build_clusters(factory4x4, field4x4, 1, cluster_size=5)
        g_gpu = gpu_stratified_inverse(dev, chain, block=8)
        g_cpu = stratified_inverse(chain, method="prepivot")
        assert relerr(g_gpu, g_cpu) < 1e-9

    def test_strong_coupling_stable(self, rng):
        from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice

        model = HubbardModel(SquareLattice(4, 4), u=8.0, beta=10.0, n_slices=80)
        fac = BMatrixFactory(model)
        field = HSField.random(80, 16, rng)
        chain = build_clusters(fac, field, 1, cluster_size=8)
        dev = SimulatedDevice()
        g_gpu = gpu_stratified_inverse(dev, chain, block=8)
        g_cpu = stratified_inverse(chain, method="qrp")
        assert np.all(np.isfinite(g_gpu))
        assert relerr(g_gpu, g_cpu) < 1e-9

    def test_no_device_memory_leak(self, dev, factory4x4, field4x4):
        chain = build_clusters(factory4x4, field4x4, 1, cluster_size=10)
        before = dev.allocated_bytes
        gpu_stratified_decomposition(dev, chain, block=8)
        assert dev.allocated_bytes == before

    def test_per_step_transfers_are_small(self, dev, factory4x4, field4x4):
        """Beyond the factor uploads and the final Q/T downloads, each
        chain step only moves O(n) bytes (norms down, permutation up) —
        the property that makes GPU stratification viable at all."""
        chain = build_clusters(factory4x4, field4x4, 1, cluster_size=5)
        n = 16
        n_steps = len(chain)
        h2d0, d2h0 = dev.h2d_bytes, dev.d2h_bytes
        gpu_stratified_decomposition(dev, chain, block=8)
        factor_up = n_steps * n * n * 8
        small_up = dev.h2d_bytes - h2d0 - factor_up
        # per step: permutation (8n) + diag scaling vector (8n), x2 perms
        assert small_up < n_steps * 5 * n * 8
        results_down = 2 * n * n * 8
        small_down = dev.d2h_bytes - d2h0 - results_down
        assert small_down < n_steps * 3 * n * 8

    def test_empty_chain_raises(self, dev):
        with pytest.raises(ValueError):
            gpu_stratified_decomposition(dev, [])
