"""Unit + exact-reference tests for the symmetric-Trotter correction."""

import itertools

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.measure import (
    HalfKineticTransform,
    kinetic_energy,
    momentum_distribution,
    symmetrized_greens,
)
from tests.ed_reference import HubbardED


def enumerate_docc(model, symmetric: bool):
    """Exact Trotterized double occupancy under either measurement split."""
    fac = BMatrixFactory(model)
    n, nl = model.n_sites, model.n_slices
    transform = HalfKineticTransform(fac)
    z = val = 0.0
    for bits in itertools.product([-1.0, 1.0], repeat=n * nl):
        field = HSField(np.array(bits).reshape(nl, n))
        w = 1.0
        gs = {}
        for s in (1, -1):
            m = np.eye(n) + fac.full_product(field, s)
            w *= np.linalg.det(m)
            gs[s] = np.linalg.inv(m)
        if symmetric:
            gs = {s: transform.apply(g) for s, g in gs.items()}
        n_up = 1.0 - np.diag(gs[1])
        n_dn = 1.0 - np.diag(gs[-1])
        z += w
        val += w * float((n_up * n_dn).mean())
    return val / z


class TestTransform:
    def test_is_similarity(self, factory4x4, rng):
        tr = HalfKineticTransform(factory4x4)
        g = rng.normal(size=(16, 16))
        out = tr.apply(g)
        # similarity: spectrum preserved
        np.testing.assert_allclose(
            np.sort_complex(np.linalg.eigvals(out)),
            np.sort_complex(np.linalg.eigvals(g)),
            atol=1e-9,
        )

    def test_one_shot_matches_cached(self, factory4x4, rng):
        g = rng.normal(size=(16, 16))
        np.testing.assert_allclose(
            symmetrized_greens(factory4x4, g),
            HalfKineticTransform(factory4x4).apply(g),
            atol=1e-14,
        )

    def test_k_commuting_observables_invariant(self, factory4x4, field4x4, engine4x4):
        """KE and <n_k> commute with K, so the transform cannot change
        them (measured invariance, pinned)."""
        lat = factory4x4.model.lattice
        g = engine4x4.boundary_greens(1, 0)
        g_sym = symmetrized_greens(factory4x4, g)
        assert kinetic_energy(lat, g, g) == pytest.approx(
            kinetic_energy(lat, g_sym, g_sym), abs=1e-10
        )
        np.testing.assert_allclose(
            momentum_distribution(lat, g_sym),
            momentum_distribution(lat, g),
            atol=1e-10,
        )

    def test_changes_site_diagonal_observables(self, factory4x4, engine4x4):
        g = engine4x4.boundary_greens(1, 0)
        g_sym = symmetrized_greens(factory4x4, g)
        assert not np.allclose(np.diag(g_sym), np.diag(g))


class TestTrotterErrorReduction:
    @pytest.fixture(scope="class")
    def errors(self):
        beta, u = 1.0, 4.0
        lat = SquareLattice(2, 1)
        ed = HubbardED(
            HubbardModel(lat, u=u, beta=beta, n_slices=2).kinetic_matrix(), u=u
        )
        exact = ed.double_occupancy(beta)
        out = {}
        for nl in (4, 8):
            model = HubbardModel(lat, u=u, beta=beta, n_slices=nl)
            e_asym = enumerate_docc(model, symmetric=False) - exact
            e_sym = enumerate_docc(model, symmetric=True) - exact
            out[nl] = (e_asym, e_sym)
        return out

    def test_symmetric_error_smaller(self, errors):
        for nl, (e_a, e_s) in errors.items():
            assert abs(e_s) < abs(e_a), (nl, e_a, e_s)

    def test_errors_have_opposite_signs(self, errors):
        """The measured sign flip the averaging trick relies on."""
        for nl, (e_a, e_s) in errors.items():
            assert e_a * e_s < 0, (nl, e_a, e_s)

    def test_split_average_cancels_quadratic_term(self, errors):
        for nl, (e_a, e_s) in errors.items():
            avg_err = 0.5 * (e_a + e_s)
            assert abs(avg_err) < 0.35 * abs(e_a), (nl, e_a, e_s)

    def test_both_splits_still_quadratic(self, errors):
        (ea4, es4), (ea8, es8) = errors[4], errors[8]
        assert abs(ea4) / abs(ea8) > 2.5
        assert abs(es4) / abs(es8) > 2.5