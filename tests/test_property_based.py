"""Property-based tests (hypothesis) on the core numerical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import DelayedUpdater, stratified_decomposition, stratified_inverse
from repro.lattice import SquareLattice
from repro.linalg import (
    GradedDecomposition,
    column_norms,
    inverse_permutation,
    prepivot_permutation,
    qr_nopivot,
    qr_pivoted,
    qr_prepivoted,
    split_scales,
    stable_inverse_from_graded,
)
from repro.measure import binned_statistics

# Bounded, NaN-free float strategies keep the properties about algebra,
# not about IEEE edge cases the library explicitly does not handle.
finite = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def square(n_min=2, n_max=8, elements=finite):
    return st.integers(n_min, n_max).flatmap(
        lambda n: arrays(np.float64, (n, n), elements=elements)
    )


@st.composite
def nonsingular_square(draw, n_min=2, n_max=8):
    """A comfortably invertible matrix: random + dominant diagonal."""
    a = draw(square(n_min, n_max))
    n = a.shape[0]
    return a + np.eye(n) * (np.abs(a).sum() + 1.0)


class TestQRProperties:
    @given(a=nonsingular_square())
    @settings(max_examples=40, deadline=None)
    def test_all_variants_reconstruct(self, a):
        for fn in (qr_nopivot, qr_pivoted, qr_prepivoted):
            res = fn(a)
            scale = max(np.abs(a).max(), 1.0)
            assert np.abs(res.reconstruct() - a).max() < 1e-9 * scale

    @given(a=square())
    @settings(max_examples=40, deadline=None)
    def test_q_is_orthogonal(self, a):
        q = qr_nopivot(a).q
        n = q.shape[1]
        assert np.abs(q.T @ q - np.eye(n)).max() < 1e-10

    @given(a=square())
    @settings(max_examples=40, deadline=None)
    def test_pivot_vectors_are_permutations(self, a):
        n = a.shape[1]
        for fn in (qr_pivoted, qr_prepivoted):
            piv = fn(a).piv
            assert np.array_equal(np.sort(piv), np.arange(n))


class TestNormProperties:
    @given(a=square(n_max=10))
    @settings(max_examples=50, deadline=None)
    def test_prepivot_sorts_descending(self, a):
        piv = prepivot_permutation(a)
        nrm = column_norms(a)[piv]
        assert np.all(np.diff(nrm) <= 1e-12 * (1.0 + nrm[:-1]))

    @given(a=square(n_max=10), c=st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_norms_are_absolutely_homogeneous(self, a, c):
        # keep squares out of the subnormal range: the documented
        # contract of column_norms (stratification inputs are O(1))
        a = np.where(np.abs(a) < 1e-100, 0.0, a)
        np.testing.assert_allclose(
            column_norms(c * a), c * column_norms(a), rtol=1e-10
        )

    @given(piv=st.permutations(list(range(9))))
    def test_inverse_permutation_roundtrip(self, piv):
        piv = np.array(piv)
        inv = inverse_permutation(piv)
        assert np.array_equal(piv[inv], np.arange(9))


class TestSplitScales:
    @given(
        d=arrays(
            np.float64,
            st.integers(1, 12),
            elements=st.floats(
                min_value=1e-150, max_value=1e150, allow_nan=False
            ),
        ),
        signs=st.booleans(),
    )
    @settings(max_examples=60)
    def test_invariants(self, d, signs):
        if signs:
            d = -d
        db, ds = split_scales(d)
        assert np.all(np.abs(db) <= 1.0)
        assert np.all(np.abs(ds) <= 1.0)
        np.testing.assert_allclose(ds / db, d, rtol=1e-13)


class TestStratificationProperties:
    @given(
        chain=st.lists(nonsingular_square(n_min=4, n_max=4), min_size=1, max_size=6)
    )
    @settings(max_examples=25, deadline=None)
    def test_decomposition_reconstructs_product(self, chain):
        expected = np.eye(4)
        for f in chain:
            expected = f @ expected
        for method in ("qrp", "prepivot"):
            dec = stratified_decomposition(chain, method=method)
            scale = np.abs(expected).max()
            assert np.abs(dec.dense() - expected).max() < 1e-8 * scale

    @given(
        chain=st.lists(nonsingular_square(n_min=3, n_max=3), min_size=1, max_size=5)
    )
    @settings(max_examples=25, deadline=None)
    def test_inverse_solves_defining_equation(self, chain):
        g = stratified_inverse(chain, method="prepivot")
        prod = np.eye(3)
        for f in chain:
            prod = f @ prod
        resid = g @ (np.eye(3) + prod) - np.eye(3)
        assert np.abs(resid).max() < 1e-7 * max(1.0, np.abs(prod).max())

    @given(
        chain=st.lists(nonsingular_square(n_min=4, n_max=4), min_size=2, max_size=5)
    )
    @settings(max_examples=20, deadline=None)
    def test_methods_agree(self, chain):
        g2 = stratified_inverse(chain, method="qrp")
        g3 = stratified_inverse(chain, method="prepivot")
        assert np.abs(g2 - g3).max() < 1e-8 * (1.0 + np.abs(g2).max())


class TestStableInverse:
    @given(
        logd=arrays(
            np.float64, st.integers(2, 6),
            elements=st.floats(min_value=-30, max_value=30),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_diagonal_chain_analytic(self, logd):
        d = 10.0**logd
        n = d.size
        g = GradedDecomposition(q=np.eye(n), d=d, t=np.eye(n))
        np.testing.assert_allclose(
            stable_inverse_from_graded(g), np.diag(1.0 / (1.0 + d)), rtol=1e-10
        )


class TestDelayedUpdaterProperty:
    @given(
        seed=st.integers(0, 2**31),
        delays=st.tuples(st.integers(1, 3), st.integers(4, 16)),
        n_updates=st.integers(1, 12),
    )
    @settings(max_examples=25, deadline=None)
    def test_delay_invariance(self, seed, delays, n_updates):
        """The final G never depends on the block size."""
        rng = np.random.default_rng(seed)
        g0 = rng.normal(size=(8, 8)) * 0.3 + 0.5 * np.eye(8)
        sites = rng.integers(0, 8, size=n_updates)
        alphas = rng.normal(size=n_updates) * 0.3
        results = []
        for delay in delays:
            g = g0.copy()
            upd = DelayedUpdater(g, max_delay=delay)
            for i, alpha in zip(sites, alphas):
                d = 1.0 + alpha * (1.0 - upd.diag_element(int(i)))
                upd.accept(int(i), float(alpha), d)
            upd.flush()
            results.append(g)
        np.testing.assert_allclose(results[0], results[1], atol=1e-9)


class TestLatticeProperties:
    @given(
        lx=st.integers(2, 7), ly=st.integers(2, 7),
        i=st.integers(0, 48), j=st.integers(0, 48),
    )
    @settings(max_examples=60)
    def test_displacement_index_consistency(self, lx, ly, i, j):
        lat = SquareLattice(lx, ly)
        i, j = i % lat.n_sites, j % lat.n_sites
        r = lat.displacement_index(i, j)
        assert lat.translation_table[r, i] == j

    @given(lx=st.integers(1, 6), ly=st.integers(1, 6))
    def test_adjacency_row_sums_uniform(self, lx, ly):
        a = SquareLattice(lx, ly).adjacency
        sums = a.sum(axis=0)
        assert np.all(sums == sums[0])


class TestJacobiProperties:
    @given(a=nonsingular_square(n_min=3, n_max=7))
    @settings(max_examples=20, deadline=None)
    def test_factorization_invariants(self, a):
        from repro.linalg import jacobi_svd

        u, s, vt = jacobi_svd(a)
        n = a.shape[0]
        assert np.all(s >= 0)
        assert np.all(np.diff(s) <= 1e-10 * (s[0] + 1))
        assert np.abs(u @ np.diag(s) @ vt - a).max() < 1e-9 * (np.abs(a).max() + 1)
        assert np.abs(u.T @ u - np.eye(n)).max() < 1e-9

    @given(
        logd=arrays(
            np.float64, 5, elements=st.floats(min_value=-40, max_value=0)
        ),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_relative_accuracy_on_scaled_orthogonal(self, logd, seed):
        """For Q diag(10^logd), singular values are exactly the scalings."""
        from repro.linalg import jacobi_svd

        rng_local = np.random.default_rng(seed)
        q, _ = np.linalg.qr(rng_local.normal(size=(5, 5)))
        d = 10.0**logd
        _, s, _ = jacobi_svd(q * d[None, :])
        np.testing.assert_allclose(s, np.sort(d)[::-1], rtol=1e-10)


class TestDisplacedProperties:
    @given(seed=st.integers(0, 2**31), l_frac=st.floats(0.0, 1.0))
    @settings(max_examples=15, deadline=None)
    def test_antiperiodic_sum_rule(self, seed, l_frac):
        """G(tau, 0) interpolates between G(0,0) and I - G(0,0); at any
        tau, G(beta,0) + G(0,0) = I holds exactly and the displaced
        function stays finite."""
        from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
        from repro.core import displaced_greens

        rng_local = np.random.default_rng(seed)
        model = HubbardModel(SquareLattice(2, 2), u=5.0, beta=2.0, n_slices=16)
        fac = BMatrixFactory(model)
        field = HSField.random(16, 4, rng_local)
        l = int(l_frac * 15)
        g_tau = displaced_greens(fac, field, 1, l)
        assert np.all(np.isfinite(g_tau))
        g_beta = displaced_greens(fac, field, 1, 15)
        g_0 = displaced_greens(fac, field, 1, -1)
        assert np.abs(g_beta + g_0 - np.eye(4)).max() < 1e-9


class TestCheckerboardProperties:
    @given(
        lx=st.integers(2, 6), ly=st.integers(2, 6),
        dtau=st.floats(0.01, 0.3), t=st.floats(0.2, 2.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_positive_determinant_and_bounded_error(self, lx, ly, dtau, t):
        from repro.hamiltonian import CheckerboardPropagator
        from repro.lattice import SquareLattice

        cb = CheckerboardPropagator(SquareLattice(lx, ly), t=t, dtau=dtau)
        sign, _ = np.linalg.slogdet(cb.dense())
        assert sign == 1.0
        # O(dtau^2) with a generous constant over this parameter box
        assert cb.splitting_error() < 5.0 * (t * dtau) ** 2 + 1e-12


class TestEstimatorProperties:
    @given(
        x=arrays(
            np.float64, st.integers(4, 200),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        shift=st.floats(-10, 10, allow_nan=False),
    )
    @settings(max_examples=40)
    def test_binning_translation_equivariance(self, x, shift):
        a = binned_statistics(x)
        b = binned_statistics(x + shift)
        assert float(b.mean) == pytest.approx(float(a.mean) + shift, abs=1e-7)
        assert float(b.error) == pytest.approx(float(a.error), abs=1e-7)
