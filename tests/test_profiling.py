"""Unit tests for the per-phase profiler."""

import time

import pytest

from repro.profiling import PHASES, PhaseProfiler, ensure_profiler


class TestPhaseProfiler:
    def test_records_time_and_calls(self):
        p = PhaseProfiler()
        with p.phase("a"):
            time.sleep(0.01)
        with p.phase("a"):
            pass
        assert p.seconds["a"] >= 0.01
        assert p.calls["a"] == 2

    def test_percentages_sum_to_100(self):
        p = PhaseProfiler()
        for name in ("x", "y", "z"):
            with p.phase(name):
                time.sleep(0.002)
        pct = p.percentages()
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_percentages_empty(self):
        assert PhaseProfiler().percentages() == {}

    def test_time_recorded_on_exception(self):
        p = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with p.phase("boom"):
                time.sleep(0.002)
                raise RuntimeError
        assert p.seconds["boom"] >= 0.002

    def test_merge(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        with a.phase("x"):
            pass
        with b.phase("x"):
            pass
        with b.phase("y"):
            pass
        a.merge(b)
        assert a.calls["x"] == 2 and a.calls["y"] == 1

    def test_report_contains_table1_phases(self):
        p = PhaseProfiler()
        for name in PHASES:
            with p.phase(name):
                pass
        text = p.report()
        for name in PHASES:
            assert name in text

    def test_accounted_vs_total(self):
        p = PhaseProfiler()
        with p.phase("x"):
            time.sleep(0.002)
        time.sleep(0.002)  # unaccounted
        assert p.accounted < p.total


class TestEnsureProfiler:
    def test_passthrough(self):
        p = PhaseProfiler()
        assert ensure_profiler(p) is p

    def test_null_profiler_records_nothing(self):
        null = ensure_profiler(None)
        with null.phase("x"):
            pass
        assert null.seconds == {}
