"""Tests for the qmclint static-analysis pass.

Each rule gets a good/bad fixture pair; pragma suppression, baseline
handling and the CLI are exercised end-to-end; and a meta-test asserts
the shipped ``src/`` tree is lint-clean with an empty baseline.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from qmclint.baseline import (  # noqa: E402
    apply_baseline,
    fingerprint,
    load_baseline,
    save_baseline,
)
from qmclint.cli import main as qmclint_main  # noqa: E402
from qmclint.engine import FileContext, LintRunner  # noqa: E402
from qmclint.rules import ALL_RULES  # noqa: E402


def lint_source(tmp_path: Path, source: str, rel: str = "repro/mod.py"):
    """Lint one in-memory module placed at a controllable relative path."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    runner = LintRunner(ALL_RULES, root=tmp_path)
    return runner.run_file(path)


def codes(violations):
    return sorted(v.code for v in violations)


class TestQL001RawInverse:
    def test_flags_linalg_inv(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def bad(a):
                return np.linalg.inv(a)
            """,
        )
        assert codes(vs) == ["QL001"]

    def test_flags_sla_inv_and_scipy_inv(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import scipy.linalg as sla
            import scipy

            def bad(a):
                return sla.inv(a) + scipy.linalg.inv(a)
            """,
        )
        assert codes(vs) == ["QL001", "QL001"]

    def test_flags_solve_on_identity_plus_product(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np
            import scipy.linalg as sla

            def bad(prod):
                return sla.solve(np.eye(4) + prod, np.eye(4))
            """,
        )
        assert codes(vs) == ["QL001"]

    def test_allows_stable_module(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np
            import scipy.linalg as sla

            def naive_inverse(prod):
                return sla.solve(np.eye(4) + prod, np.eye(4))
            """,
            rel="repro/linalg/stable.py",
        )
        assert "QL001" not in codes(vs)

    def test_allows_plain_solve(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import scipy.linalg as sla

            def good(lhs, rhs):
                return sla.solve(lhs, rhs)
            """,
        )
        assert vs == []


class TestQL002UnseededRNG:
    def test_flags_unseeded_default_rng(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def bad():
                return np.random.default_rng().random()
            """,
        )
        assert "QL002" in codes(vs)

    def test_flags_module_level_global_rng(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def bad(n):
                return np.random.rand(n)
            """,
        )
        assert codes(vs) == ["QL002"]

    def test_allows_seeded_and_threaded_rng(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def good(seed, rng):
                a = np.random.default_rng(seed)
                return a.random() + rng.random()
            """,
        )
        assert vs == []

    def test_allows_tests_and_cli(self, tmp_path):
        bad = """
            import numpy as np

            def f():
                return np.random.default_rng()
            """
        assert lint_source(tmp_path, bad, rel="tests/test_x.py") == []
        assert lint_source(tmp_path, bad, rel="repro/cli.py") == []


class TestQL003DtypeHygiene:
    def test_flags_astype_builtin_int(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            def bad(a):
                return a.astype(int)
            """,
        )
        assert codes(vs) == ["QL003"]

    def test_flags_float32_downcasts(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def bad(a):
                b = a.astype(np.float32)
                c = np.zeros(4, dtype=np.float32)
                d = np.array([1.0], dtype="float32")
                return b, c, d
            """,
        )
        assert codes(vs) == ["QL003", "QL003", "QL003"]

    def test_allows_explicit_float64(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def good(a):
                return a.astype(np.float64), np.zeros(3, dtype=np.int64)
            """,
        )
        assert vs == []


class TestQL004FlopLedger:
    BAD = """
        import numpy as np

        def bad_gemm(a, b):
            return a @ b
        """
    GOOD = """
        import numpy as np
        from repro.linalg import flops

        def good_gemm(a, b):
            flops.record("gemm", 2.0 * a.shape[0] ** 3)
            return a @ b
        """

    def test_flags_unrecorded_matmul_in_kernel_dirs(self, tmp_path):
        for rel in ("repro/linalg/x.py", "repro/core/x.py", "repro/gpu/x.py"):
            assert codes(lint_source(tmp_path, self.BAD, rel=rel)) == ["QL004"]

    def test_flags_unrecorded_heavy_calls(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import scipy.linalg as sla

            def bad(a, b):
                lu, piv = sla.lu_factor(a)
                return sla.qr(b)
            """,
            rel="repro/linalg/x.py",
        )
        assert codes(vs) == ["QL004"]

    def test_recording_function_passes(self, tmp_path):
        assert lint_source(tmp_path, self.GOOD, rel="repro/linalg/x.py") == []

    def test_out_of_scope_dirs_ignored(self, tmp_path):
        assert lint_source(tmp_path, self.BAD, rel="repro/measure/x.py") == []


class TestQL005InPlaceParam:
    def test_flags_undeclared_mutation(self, tmp_path):
        vs = lint_source(
            tmp_path,
            '''
            import numpy as np

            def bad(g: np.ndarray):
                """Advance the function."""
                g[0, 0] = 1.0
                return g
            ''',
        )
        assert codes(vs) == ["QL005"]

    def test_flags_augmented_and_out_kwarg(self, tmp_path):
        vs = lint_source(
            tmp_path,
            '''
            import numpy as np

            def bad(g: np.ndarray, h: np.ndarray):
                """Compute things."""
                g += 1.0
                np.multiply(h, 2.0, out=h)
            ''',
        )
        assert codes(vs) == ["QL005", "QL005"]

    def test_docstring_declaration_allows(self, tmp_path):
        vs = lint_source(
            tmp_path,
            '''
            import numpy as np

            def wrap(g: np.ndarray):
                """Advance G in place and return it."""
                g[0, 0] = 1.0
                return g
            ''',
        )
        assert vs == []

    def test_rebound_parameter_is_not_aliasing(self, tmp_path):
        vs = lint_source(
            tmp_path,
            '''
            import numpy as np

            def good(a: np.ndarray):
                """Factor a copy."""
                a = np.asarray(a).copy()
                a[0, 0] = 1.0
                return a
            ''',
        )
        assert vs == []

    def test_unannotated_params_ignored(self, tmp_path):
        vs = lint_source(
            tmp_path,
            '''
            def good(counts):
                """Tally."""
                counts[0] += 1
            ''',
        )
        assert vs == []


class TestQL006SilentExcept:
    def test_flags_bare_except(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            def bad():
                try:
                    return 1
                except:
                    pass
            """,
        )
        assert codes(vs) == ["QL006"]

    def test_flags_swallowed_broad_exception(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            def bad():
                try:
                    return 1
                except Exception:
                    pass
            """,
        )
        assert codes(vs) == ["QL006"]

    def test_allows_handled_specific_exception(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            def good():
                try:
                    return 1
                except ValueError as exc:
                    raise RuntimeError("context") from exc
                except Exception as exc:
                    print(exc)
                    raise
            """,
        )
        assert vs == []


class TestQL007BackendBypass:
    def test_flags_direct_linalg_call_in_core(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def bad(a):
                return np.linalg.qr(a)
            """,
            rel="repro/core/mod.py",
        )
        assert "QL007" in codes(vs)

    def test_flags_manual_diag_scaling_in_core(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            def bad(a, v, d):
                c = a * v[:, None]
                c *= d[None, :]
                return c
            """,
            rel="repro/core/mod.py",
        )
        assert codes(vs) == ["QL007", "QL007"]

    def test_out_of_scope_dirs_ignored(self, tmp_path):
        src = """
        def fine(a, v):
            return a * v[:, None]
        """
        assert lint_source(tmp_path, src, rel="repro/backends/mod.py") == []
        assert lint_source(tmp_path, src, rel="repro/linalg/mod.py") == []
        assert lint_source(tmp_path, src, rel="repro/gpu/mod.py") == []

    def test_exception_classes_not_flagged(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def ok():
                raise np.linalg.LinAlgError("singular")
            """,
            rel="repro/core/mod.py",
        )
        assert vs == []

    def test_line_pragma_suppresses(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def diagnostic(a):
                return np.linalg.norm(a)  # qmclint: disable=QL007
            """,
            rel="repro/core/mod.py",
        )
        assert vs == []


class TestQL008PrecisionBypass:
    def test_flags_dtype_keyword_in_core(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def bad(a):
                return np.asarray(a, dtype=np.float64)
            """,
            rel="repro/core/mod.py",
        )
        assert "QL008" in codes(vs)

    def test_flags_astype_literal_in_linalg(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def bad(a):
                return a.astype(np.float32)
            """,
            rel="repro/linalg/mod.py",
        )
        assert "QL008" in codes(vs)

    def test_flags_string_dtype_literal(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def bad(a):
                return np.zeros_like(a, dtype="float32")
            """,
            rel="repro/backends/mod.py",
        )
        assert "QL008" in codes(vs)

    def test_policy_coercion_is_the_sanctioned_idiom(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            def good(self, a):
                return self.policy.compute(a)
            """,
            rel="repro/core/mod.py",
        )
        assert vs == []

    def test_out_of_scope_packages_ignored(self, tmp_path):
        src = """
        import numpy as np

        def fine(a):
            return np.asarray(a, dtype=np.float64)
        """
        assert lint_source(tmp_path, src, rel="repro/measure/mod.py") == []
        assert lint_source(tmp_path, src, rel="repro/gpu/mod.py") == []
        assert lint_source(tmp_path, src, rel="other/core/mod.py") == []

    def test_flags_mixed_width_gemm(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def bad(self, a, g):
                wide = np.asarray(a, dtype=np.float64)  # qmclint: disable=QL008
                narrow = self.policy.compute(g)
                return wide @ narrow
            """,
            rel="repro/core/mod.py",
        )
        assert "QL008" in codes(vs)

    def test_uniform_width_gemm_not_flagged(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            from repro.linalg import flops

            def good(self, a, g):
                x = self.policy.compute(a)
                y = self.policy.compute(g)
                flops.record("gemm", 1)
                return x @ y
            """,
            rel="repro/core/mod.py",
        )
        assert vs == []

    def test_reasoned_pragma_suppresses(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def reference(a):
                return np.asarray(a, dtype=np.float64)  # qmclint: disable=QL008 -- float64 diagnostic
            """,
            rel="repro/hamiltonian/mod.py",
        )
        assert vs == []


class TestPragmas:
    def test_line_pragma_suppresses(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def allowed(a):
                return np.linalg.inv(a)  # qmclint: disable=QL001
            """,
        )
        assert vs == []

    def test_line_pragma_is_code_specific(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            import numpy as np

            def still_bad(a):
                return np.linalg.inv(a)  # qmclint: disable=QL002
            """,
        )
        assert codes(vs) == ["QL001"]

    def test_file_pragma_suppresses_everywhere(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            # qmclint: disable-file=QL001
            import numpy as np

            def a1(a):
                return np.linalg.inv(a)

            def a2(a):
                return np.linalg.inv(a)
            """,
        )
        assert vs == []

    def test_def_line_pragma_for_function_scoped_rule(self, tmp_path):
        vs = lint_source(
            tmp_path,
            """
            def helper(a, b):  # qmclint: disable=QL004
                return a @ b
            """,
            rel="repro/linalg/x.py",
        )
        assert vs == []


class TestBaseline:
    def _violation(self, tmp_path):
        path = tmp_path / "repro" / "mod.py"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            "import numpy as np\n\n"
            "def bad(a):\n"
            "    return np.linalg.inv(a)\n"
        )
        runner = LintRunner(ALL_RULES, root=tmp_path)
        (v,) = runner.run_file(path)
        line = path.read_text().splitlines()[v.line - 1]
        return v, fingerprint(v, line)

    def test_baselined_violation_is_dropped(self, tmp_path):
        v, fp = self._violation(tmp_path)
        bl = tmp_path / ".qmclint-baseline"
        save_baseline(bl, [fp])
        assert apply_baseline([(v, fp)], load_baseline(bl)) == []

    def test_new_violation_survives_baseline(self, tmp_path):
        v, fp = self._violation(tmp_path)
        bl = tmp_path / ".qmclint-baseline"
        save_baseline(bl, ["repro/other.py::QL001::deadbeef0000"])
        assert apply_baseline([(v, fp)], load_baseline(bl)) == [v]

    def test_fingerprint_survives_line_moves(self, tmp_path):
        v, fp = self._violation(tmp_path)
        path = tmp_path / "repro" / "mod.py"
        path.write_text("import numpy as np\n\n\n\n" + "\n".join(
            path.read_text().splitlines()[2:]
        ) + "\n")
        runner = LintRunner(ALL_RULES, root=tmp_path)
        (v2,) = runner.run_file(path)
        line = path.read_text().splitlines()[v2.line - 1]
        assert v2.line != v.line
        assert fingerprint(v2, line) == fp


class TestCLI:
    def test_exit_one_on_violation_and_zero_after_fix(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text("import numpy as np\nx = np.linalg.inv(np.eye(2))\n")
        assert qmclint_main([str(f)]) == 1
        out = capsys.readouterr().out
        assert "QL001" in out
        f.write_text("import numpy as np\nx = np.eye(2)\n")
        assert qmclint_main([str(f)]) == 0

    def test_update_baseline_then_clean(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("import numpy as np\nx = np.linalg.inv(np.eye(2))\n")
        bl = tmp_path / "bl.txt"
        assert qmclint_main(
            [str(f), "--baseline", str(bl), "--update-baseline", "-q"]
        ) == 0
        assert bl.exists()
        assert qmclint_main([str(f), "--baseline", str(bl), "-q"]) == 0
        assert qmclint_main([str(f), "--baseline", str(bl), "--no-baseline", "-q"]) == 1

    def test_select_and_ignore(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("import numpy as np\nx = np.linalg.inv(np.eye(2))\n")
        assert qmclint_main([str(f), "--select", "QL002", "-q"]) == 0
        assert qmclint_main([str(f), "--ignore", "QL001", "-q"]) == 0
        assert qmclint_main([str(f), "--select", "QL001", "-q"]) == 1

    def test_unknown_code_is_usage_error(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text("import numpy as np\nx = np.linalg.inv(np.eye(2))\n")
        # A typo'd code must not silently select nothing and report clean.
        assert qmclint_main([str(f), "--select", "QL999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err
        assert qmclint_main([str(f), "--ignore", "QLOOPS", "-q"]) == 2

    def test_list_rules(self, capsys):
        assert qmclint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("QL001", "QL002", "QL003", "QL004", "QL005", "QL006"):
            assert code in out

    def test_missing_path_is_usage_error(self, tmp_path):
        assert qmclint_main([str(tmp_path / "nope.py")]) == 2

    def test_syntax_error_reported_not_crash(self, tmp_path, capsys):
        f = tmp_path / "broken.py"
        f.write_text("def (:\n")
        assert qmclint_main([str(f), "-q"]) == 2
        assert "unparseable" in capsys.readouterr().err


class TestShippedTree:
    """The acceptance criterion: the repository itself is lint-clean."""

    def test_src_tree_is_clean_with_empty_baseline(self, capsys):
        baseline = REPO_ROOT / ".qmclint-baseline"
        assert baseline.exists()
        assert load_baseline(baseline) == {}, "shipped baseline must be empty"
        rc = qmclint_main(
            [str(REPO_ROOT / "src"), "--baseline", str(baseline)]
        )
        out = capsys.readouterr().out
        assert rc == 0, f"qmclint found violations in src/:\n{out}"

    def test_every_rule_has_code_name_description(self):
        seen = set()
        for rule in ALL_RULES:
            assert rule.code.startswith("QL") and len(rule.code) == 5
            assert rule.code not in seen
            seen.add(rule.code)
            assert rule.name and rule.description

    def test_file_context_pragma_parsing(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "x = 1  # qmclint: disable=QL001, QL004\n"
            "# qmclint: disable-file=QL006\n"
        )
        ctx = FileContext.parse(f, root=tmp_path)
        assert ctx.line_pragmas(1) == {"QL001", "QL004"}
        assert ctx.line_pragmas(2) == set()
        assert ctx.file_pragmas() == {"QL006"}
