"""Unit tests for the warmup-time autotuner and its profile cache."""

import json

import numpy as np
import pytest

from repro import HubbardModel, Simulation, SquareLattice
from repro.autotune import (
    TuningCache,
    TuningParameters,
    WarmupAutotuner,
    candidate_grid,
    cluster_size_candidates,
    default_cache_path,
    divisor_near,
    divisors,
    profile_key,
    tune_simulation,
)


def small_model():
    return HubbardModel(SquareLattice(4, 4), u=2.0, beta=2.0, n_slices=16)


def small_sim(seed=5, cluster=8, delay=32):
    return Simulation(
        small_model(), seed=seed, cluster_size=cluster, max_delay=delay,
        measure_arrays=False,
    )


def scripted_timer(deltas):
    """A timing_source whose i-th trial costs ``deltas[i]`` seconds.

    Each trial reads the source twice (before/after); the scripted clock
    advances by the next delta on every second read.
    """
    state = {"t": 0.0, "reads": 0, "i": 0}

    def source():
        state["reads"] += 1
        if state["reads"] % 2 == 0:
            state["t"] += deltas[state["i"] % len(deltas)]
            state["i"] += 1
        return state["t"]

    return source


class TestParameters:
    def test_wrap_interval_tied_to_cluster(self):
        with pytest.raises(ValueError, match="wrap_interval"):
            TuningParameters(cluster_size=4, wrap_interval=8, max_delay=16)
        p = TuningParameters.make(4, 16)
        assert p.wrap_interval == p.cluster_size == 4

    def test_round_trip(self):
        p = TuningParameters.make(8, 32)
        assert TuningParameters.from_dict(p.to_dict()) == p

    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(13) == [1, 13]

    def test_divisor_near_prefers_window(self):
        # prime slice count: the only divisors are 1 and n; the window
        # is empty, and the fallback must pick n, never 1
        assert divisor_near(13, 10) == 13
        assert divisor_near(12, 10, cap=11) == 6
        assert divisor_near(32, 10) == 8

    def test_divisor_near_ties_prefer_smaller(self):
        # 4 and 6 are both one away from 5; the smaller (safer) wins
        assert divisor_near(12, 5) == 4

    def test_cluster_candidates(self):
        cands = cluster_size_candidates(16, target=8)
        assert cands == sorted(cands)
        assert all(16 % c == 0 for c in cands)
        assert 1 not in cands

    def test_candidate_grid_baseline_first(self):
        base = TuningParameters.make(8, 32)
        grid = candidate_grid(16, 16, base)
        assert grid[0] == base
        assert len(grid) == len(set(grid))  # no duplicates
        assert all(g.wrap_interval == g.cluster_size for g in grid)
        assert len(grid) <= 12


class TestCache:
    def test_store_lookup_roundtrip(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        params = TuningParameters.make(8, 16)
        assert cache.lookup("k1") is None
        cache.store("k1", params, extra={"sweep_seconds": 0.01})
        assert cache.lookup("k1") == params
        assert cache.stats() == {"hits": 1, "misses": 1}
        assert cache.entries()["k1"]["sweep_seconds"] == 0.01

    def test_peek_does_not_bump_stats(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        cache.store("k", TuningParameters.make(4, 8))
        assert cache.peek("k") is not None
        assert cache.peek("missing") is None
        assert cache.stats() == {"hits": 0, "misses": 0}

    def test_corrupt_file_degrades_to_empty(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("{ not json")
        cache = TuningCache(path)
        assert cache.lookup("k") is None
        cache.store("k", TuningParameters.make(2, 8))
        assert cache.peek("k") == TuningParameters.make(2, 8)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        cache.store("k", TuningParameters.make(4, 16))
        leftovers = [p for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []
        json.loads((tmp_path / "tuning.json").read_text())  # well-formed

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "env.json"))
        assert default_cache_path() == tmp_path / "env.json"
        assert TuningCache().path == tmp_path / "env.json"

    def test_profile_key_ignores_mu_and_seed(self):
        m1 = small_model()
        m2 = m1.with_(mu=-1.5)
        assert profile_key(m1) == profile_key(m2)
        assert profile_key(m1, backend="threaded") != profile_key(m1)


class TestRepartition:
    def test_repartitioned_engine_matches_fresh(self):
        a, b = small_sim(cluster=8), small_sim(cluster=4)
        a.engine.repartition(4)
        assert a.engine.cluster_size == 4
        assert a.engine.n_clusters == b.engine.n_clusters
        for sigma in (+1, -1):
            np.testing.assert_allclose(
                a.engine.boundary_greens(sigma),
                b.engine.boundary_greens(sigma),
                rtol=1e-10, atol=1e-12,
            )

    def test_repartition_rejects_non_divisor(self):
        sim = small_sim()
        with pytest.raises(ValueError):
            sim.engine.repartition(5)

    def test_apply_tuning(self):
        sim = small_sim(cluster=8, delay=32)
        sim.apply_tuning(TuningParameters.make(4, 8))
        assert sim.engine.cluster_size == 4
        assert sim.max_delay == 8
        # keeps sweeping correctly after the live re-partition
        sim.warmup(2)

    def test_apply_tuning_rejects_decoupled_wrap(self):
        sim = small_sim()

        class Decoupled:
            cluster_size = 4
            wrap_interval = 8
            max_delay = 16

        with pytest.raises(ValueError, match="wrap_interval"):
            sim.apply_tuning(Decoupled())


class TestTuner:
    CANDS = [
        TuningParameters.make(8, 32),
        TuningParameters.make(4, 16),
        TuningParameters.make(2, 8),
    ]

    def test_picks_fastest_healthy(self):
        sim = small_sim()
        tuner = WarmupAutotuner(
            sim, candidates=self.CANDS, sweeps_per_candidate=1,
            timing_source=scripted_timer([5.0, 1.0, 3.0]),
        )
        result = tuner.run()
        assert result.chosen == self.CANDS[1]
        assert not result.fallback
        assert sim.engine.cluster_size == 4 and sim.max_delay == 16

    def test_deterministic_given_timings(self):
        def run_once():
            sim = small_sim(seed=7)
            return WarmupAutotuner(
                sim, candidates=self.CANDS, sweeps_per_candidate=1,
                timing_source=scripted_timer([3.0, 2.0, 1.0]),
            ).run()

        r1, r2 = run_once(), run_once()
        assert r1.chosen == r2.chosen
        assert [t.params for t in r1.trials] == [t.params for t in r2.trials]
        assert [t.sweep_seconds for t in r1.trials] == [
            t.sweep_seconds for t in r2.trials
        ]

    def test_ties_resolve_to_baseline(self):
        sim = small_sim()
        result = WarmupAutotuner(
            sim, candidates=self.CANDS, sweeps_per_candidate=1,
            timing_source=scripted_timer([1.0, 1.0, 1.0]),
        ).run()
        assert result.chosen == self.CANDS[0]

    def test_impossible_drift_tol_falls_back_to_baseline(self):
        sim = small_sim()
        result = WarmupAutotuner(
            sim, candidates=self.CANDS, sweeps_per_candidate=1,
            drift_tol=1e-300,
            timing_source=scripted_timer([5.0, 1.0, 3.0]),
        ).run()
        assert result.fallback
        assert result.chosen == self.CANDS[0]
        assert all(not t.accepted for t in result.trials)
        assert sim.engine.cluster_size == 8

    def test_non_divisor_candidate_marked_inapplicable(self):
        sim = small_sim()
        cands = [self.CANDS[0], TuningParameters.make(5, 16)]
        result = WarmupAutotuner(
            sim, candidates=cands, sweeps_per_candidate=1,
            timing_source=scripted_timer([1.0]),
        ).run()
        bad = result.trials[1]
        assert not bad.accepted
        assert "inapplicable" in bad.reason

    def test_default_grid_respects_conditioning(self):
        sim = small_sim()
        tuner = WarmupAutotuner(sim)
        assert tuner.candidates[0] == TuningParameters.make(8, 32)
        assert all(16 % c.cluster_size == 0 for c in tuner.candidates)


class TestCacheIntegration:
    def test_miss_tunes_and_stores_then_hit_reuses(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        sim = small_sim()
        r1 = tune_simulation(
            sim, cache=cache, sweeps_per_candidate=1,
            candidates=TestTuner.CANDS,
            timing_source=scripted_timer([5.0, 1.0, 3.0]),
        )
        assert not r1.cache_hit
        assert cache.peek(r1.key) == r1.chosen

        sim2 = small_sim()
        r2 = tune_simulation(sim2, cache=cache)
        assert r2.cache_hit
        assert r2.chosen == r1.chosen
        assert r2.sweeps_used == 0
        assert sim2.engine.cluster_size == r1.chosen.cluster_size

    def test_fallback_not_cached(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        result = tune_simulation(
            small_sim(), cache=cache, sweeps_per_candidate=1,
            candidates=TestTuner.CANDS, drift_tol=1e-300,
            timing_source=scripted_timer([1.0]),
        )
        assert result.fallback
        assert cache.entries() == {}


class TestTunedPhysics:
    def test_tuned_run_statistically_consistent_with_default(self):
        """Tuning changes numerics bookkeeping, not the physics: a tuned
        run's observables must agree with the default run's within a few
        error bars on the 4x4 beta = 2 fixture."""
        warm, meas = 10, 60

        default = small_sim(seed=3)
        default.warmup(warm)
        default.measure_sweeps(meas)
        d_res = default.result(n_warmup=warm, n_measurement=meas)

        tuned_sim = small_sim(seed=3)
        tuned_sim.apply_tuning(TuningParameters.make(4, 16))
        tuned_sim.warmup(warm)
        tuned_sim.measure_sweeps(meas)
        t_res = tuned_sim.result(n_warmup=warm, n_measurement=meas)

        for name in ("density", "double_occupancy", "kinetic_energy"):
            d = d_res.observables[name]
            t = t_res.observables[name]
            err = max(d.error + t.error, 0.02)
            assert abs(d.scalar - t.scalar) < 5 * err, (
                f"{name}: default {d.scalar}+-{d.error} vs "
                f"tuned {t.scalar}+-{t.error}"
            )
