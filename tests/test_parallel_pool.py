"""Unit tests for the worker pool."""

import threading

import numpy as np
import pytest

from repro.parallel import (
    WorkerPool,
    chunk_ranges,
    get_num_threads,
    get_pool,
    set_num_threads,
)


class TestChunkRanges:
    def test_covers_range_exactly(self):
        for n, c in [(10, 3), (7, 7), (100, 8), (5, 10)]:
            chunks = chunk_ranges(n, c)
            flat = [i for a, b in chunks for i in range(a, b)]
            assert flat == list(range(n)), (n, c)

    def test_empty(self):
        assert chunk_ranges(0, 4) == []

    def test_chunk_count_capped_by_n(self):
        assert len(chunk_ranges(3, 10)) == 3

    def test_balanced(self):
        sizes = [b - a for a, b in chunk_ranges(100, 8)]
        assert max(sizes) - min(sizes) <= 1


class TestWorkerPool:
    def test_parallel_for_executes_all(self):
        pool = WorkerPool(4)
        out = np.zeros(1000)

        def body(a, b):
            out[a:b] = np.arange(a, b)

        pool.parallel_for(1000, body, grain=10)
        np.testing.assert_array_equal(out, np.arange(1000.0))
        pool.shutdown()

    def test_serial_pool(self):
        pool = WorkerPool(1)
        hits = []
        pool.parallel_for(10, lambda a, b: hits.append((a, b)))
        assert hits == [(0, 10)]
        pool.shutdown()

    def test_small_loops_run_serially(self):
        pool = WorkerPool(4)
        thread_ids = set()

        def body(a, b):
            thread_ids.add(threading.get_ident())

        pool.parallel_for(10, body, grain=100)
        assert len(thread_ids) == 1  # under the grain floor: no fan-out
        pool.shutdown()

    def test_large_loops_use_workers(self):
        import time

        pool = WorkerPool(4)
        thread_ids = set()
        lock = threading.Lock()

        def body(a, b):
            with lock:
                thread_ids.add(threading.get_ident())
            time.sleep(0.02)  # hold the worker so chunks must overlap

        pool.parallel_for(10_000, body, grain=1)
        assert len(thread_ids) > 1
        pool.shutdown()

    def test_map_reduce(self):
        pool = WorkerPool(3)
        total = pool.map_reduce(
            1000,
            mapper=lambda a, b: sum(range(a, b)),
            reducer=sum,
            grain=1,
        )
        assert total == sum(range(1000))
        pool.shutdown()

    def test_map_reduce_empty(self):
        pool = WorkerPool(2)
        assert pool.map_reduce(0, lambda a, b: 1, sum) == 0
        pool.shutdown()

    def test_exceptions_propagate(self):
        pool = WorkerPool(2)

        def body(a, b):
            raise RuntimeError("worker boom")

        with pytest.raises(RuntimeError, match="worker boom"):
            pool.parallel_for(10_000, body, grain=1)
        pool.shutdown()

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        pool = WorkerPool(2)
        with pytest.raises(ValueError):
            pool.parallel_for(10, lambda a, b: None, grain=0)
        pool.shutdown()


class TestGlobalPool:
    def test_get_pool_is_singleton(self):
        assert get_pool() is get_pool()

    def test_set_num_threads(self):
        old = get_num_threads()
        try:
            pool = set_num_threads(2)
            assert get_num_threads() == 2
            assert get_pool() is pool
        finally:
            set_num_threads(old)
