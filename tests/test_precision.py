"""Unit tests for the precision-policy layer.

Covers the policy objects and resolution rules, the threading of a
policy through the engine/simulation stack, same-seed observable
agreement between ``full64`` and ``mixed``, watchdog-driven promotion
up the safety ladder, checkpoint persistence of a promoted policy,
policy-aware runtime contracts, the autotuner's precision axis, and
the dtype-aware pieces of the simulated-GPU performance model.
"""

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, Simulation, SquareLattice
from repro.precision import (
    DEFAULT_POLICY_NAME,
    ENV_VAR,
    POLICIES,
    PROMOTION_LADDER,
    PrecisionError,
    PrecisionPolicy,
    resolve_policy,
)

F32 = np.dtype("float32")
F64 = np.dtype("float64")


def make_model(lx=2, ly=2, u=4.0, beta=1.0, n_slices=8):
    return HubbardModel(SquareLattice(lx, ly), u=u, beta=beta, n_slices=n_slices)


def make_engine(seed=0, precision=None, **kwargs):
    from repro.core import GreensFunctionEngine

    model = make_model()
    rng = np.random.default_rng(seed)
    field = HSField.random(model.n_slices, model.n_sites, rng)
    engine = GreensFunctionEngine(
        BMatrixFactory(model), field, cluster_size=4, precision=precision, **kwargs
    )
    return engine, rng


class TestResolvePolicy:
    def test_names_resolve(self):
        for name in PROMOTION_LADDER:
            assert resolve_policy(name).name == name

    def test_policy_instance_passes_through(self):
        p = POLICIES["mixed"]
        assert resolve_policy(p) is p

    def test_default_is_full64(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        for spec in (None, "", "auto"):
            assert resolve_policy(spec).name == DEFAULT_POLICY_NAME

    def test_env_var_consulted_for_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "mixed")
        assert resolve_policy(None).name == "mixed"
        assert resolve_policy("auto").name == "mixed"
        # an explicit name still wins over the environment
        assert resolve_policy("full64").name == "full64"

    def test_unknown_name_lists_choices(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with pytest.raises(PrecisionError, match="full64.*mixed.*fast32"):
            resolve_policy("float16")

    def test_bad_env_value_raises_rather_than_running_full64(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fats32")
        with pytest.raises(PrecisionError):
            resolve_policy(None)

    def test_non_string_spec_raises(self):
        with pytest.raises(PrecisionError):
            resolve_policy(32)


class TestPolicyObjects:
    def test_ladder_walks_to_full64(self):
        assert POLICIES["fast32"].safer is POLICIES["mixed"]
        assert POLICIES["mixed"].safer is POLICIES["full64"]
        assert POLICIES["full64"].safer is None

    def test_dtype_table(self):
        assert POLICIES["full64"].compute_dtype == F64
        assert POLICIES["full64"].spine_dtype == F64
        assert POLICIES["mixed"].compute_dtype == F32
        assert POLICIES["mixed"].spine_dtype == F64
        assert POLICIES["fast32"].compute_dtype == F32
        assert POLICIES["fast32"].spine_dtype == F32

    def test_is_narrowed(self):
        assert not POLICIES["full64"].is_narrowed
        assert POLICIES["mixed"].is_narrowed
        assert POLICIES["fast32"].is_narrowed

    def test_drift_scales_widen_down_the_ladder(self):
        assert (
            POLICIES["full64"].drift_scale
            < POLICIES["mixed"].drift_scale
            < POLICIES["fast32"].drift_scale
        )

    def test_full64_coercions_preserve_identity(self):
        """full64's compute() must be a no-op for float64 arrays — this
        is what keeps the default policy bit-identical to the
        historical pipeline."""
        a = np.eye(3)
        assert POLICIES["full64"].compute(a) is a
        assert POLICIES["full64"].spine(a) is a

    def test_mixed_narrows_compute_keeps_spine(self):
        a = np.eye(3)
        assert POLICIES["mixed"].compute(a).dtype == F32
        assert POLICIES["mixed"].spine(a) is a


class TestEnginePolicy:
    def test_engine_carries_policy(self):
        eng, _ = make_engine(precision="mixed")
        assert eng.policy.name == "mixed"
        assert eng.policy is POLICIES["mixed"]

    def test_default_engine_is_full64(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        eng, _ = make_engine()
        assert eng.policy.name == "full64"

    def test_set_precision_switches_and_reports(self):
        eng, rng = make_engine(precision="mixed")
        assert eng.set_precision("full64") is True
        assert eng.policy.name == "full64"
        # idempotent: same policy again is a no-op
        assert eng.set_precision("full64") is False

    def test_set_precision_invalidates_cached_products(self):
        from repro.dqmc import sweep

        eng, rng = make_engine(precision="mixed")
        sweep(eng, rng)
        assert eng.cache._cache  # warm
        eng.set_precision("full64")
        assert not eng.cache._cache  # compute-dtype state was dropped

    def test_greens_matches_full64_construction_after_switch(self):
        """A switched engine must be indistinguishable from one
        constructed with the new policy over the same field."""
        eng_a, _ = make_engine(seed=5, precision="mixed")
        eng_a.set_precision("full64")
        eng_b, _ = make_engine(seed=5, precision="full64")
        np.testing.assert_array_equal(
            eng_a.boundary_greens(1, 0), eng_b.boundary_greens(1, 0)
        )

    def test_simulation_precision_property(self):
        sim = Simulation(make_model(), seed=3, cluster_size=4, precision="mixed")
        assert sim.precision == "mixed"
        assert sim.set_precision("full64") is True
        assert sim.precision == "full64"


class TestObservableAgreement:
    """ISSUE acceptance: same-seed full64 vs mixed on the 4x4 lattice at
    beta = 2 must agree on scalar observables to 1e-5."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for name in ("full64", "mixed"):
            model = HubbardModel(
                SquareLattice(4, 4), u=4.0, beta=2.0, n_slices=16
            )
            sim = Simulation(model, seed=7, cluster_size=8, precision=name)
            sim.warmup(5)
            sim.measure_sweeps(10)
            out[name] = sim.collector.results()
        return out

    @pytest.mark.parametrize(
        "observable", ["density", "double_occupancy", "kinetic_energy"]
    )
    def test_scalars_agree(self, results, observable):
        a = float(np.asarray(results["full64"][observable].mean))
        b = float(np.asarray(results["mixed"][observable].mean))
        assert abs(a - b) < 1e-5, f"{observable}: full64={a!r} mixed={b!r}"


class TestPromotion:
    def _alerting_watchdog(self, eng, tel=None, **kwargs):
        from repro.telemetry import NumericalHealthWatchdog, WatchdogConfig

        # drift_tol=1e-300 alerts even after drift_scale widening (the
        # mixed scale of 100 leaves an un-meetable 1e-298 tolerance).
        return NumericalHealthWatchdog(
            eng, WatchdogConfig(check_every=1, drift_tol=1e-300), tel, **kwargs
        )

    def test_alert_under_mixed_promotes_to_full64(self, tmp_path):
        from repro.dqmc import sweep
        from repro.telemetry import Telemetry, TelemetryWriter, read_events

        path = tmp_path / "t.jsonl"
        tel = Telemetry(TelemetryWriter(path), snapshot_every=0)
        eng, rng = make_engine(precision="mixed", telemetry=tel)
        sweep(eng, rng)
        wd = self._alerting_watchdog(eng, tel)
        report = wd.check(sweep_index=3)
        assert not report.healthy
        assert report.promoted_to == "full64"
        assert report.forced_refresh
        assert eng.policy.name == "full64"
        assert wd.promotions == 1
        assert tel.registry.counter("health.precision_promotions") == 1
        tel.close()
        kinds = [e["event"] for e in read_events(path)]
        # promotion happens after the alert and before the forced
        # refresh, so the refresh already runs under the safer rung
        assert (
            kinds.index("health_alert")
            < kinds.index("precision_promoted")
            < kinds.index("forced_refresh")
        )

    def test_fast32_promotes_one_rung_at_a_time(self):
        from repro.dqmc import sweep

        eng, rng = make_engine(precision="fast32")
        sweep(eng, rng)
        wd = self._alerting_watchdog(eng)
        assert wd.check(sweep_index=1).promoted_to == "mixed"
        assert eng.policy.name == "mixed"
        assert wd.check(sweep_index=2).promoted_to == "full64"
        assert eng.policy.name == "full64"
        assert wd.promotions == 2

    def test_full64_alert_does_not_promote(self):
        from repro.dqmc import sweep

        eng, rng = make_engine(precision="full64")
        sweep(eng, rng)
        wd = self._alerting_watchdog(eng)
        report = wd.check(sweep_index=1)
        assert not report.healthy  # still alerts + refreshes ...
        assert report.forced_refresh
        assert report.promoted_to is None  # ... but has no safer rung
        assert wd.promotions == 0

    def test_promote_false_gates_without_mutating(self):
        """The autotuner's watchdog mode: reject unhealthy trials
        without switching the engine's policy mid-search."""
        from repro.dqmc import sweep

        eng, rng = make_engine(precision="mixed")
        sweep(eng, rng)
        wd = self._alerting_watchdog(eng, promote=False)
        report = wd.check(sweep_index=1)
        assert not report.healthy
        assert report.promoted_to is None
        assert eng.policy.name == "mixed"
        assert wd.promotions == 0

    def test_drift_tolerance_scales_with_policy(self):
        """The watchdog widens the configured tolerance by the active
        policy's drift_scale: a tolerance 50x tighter than the measured
        drift stays healthy under mixed (x100 allowance), while 200x
        tighter alerts even after scaling."""
        from repro.dqmc import sweep
        from repro.telemetry import NumericalHealthWatchdog, WatchdogConfig

        eng, rng = make_engine(seed=11, precision="mixed")
        sweep(eng, rng)
        drift = max(eng.wrap_drift(s) for s in (1, -1))
        assert drift > 0.0
        loose = WatchdogConfig(check_every=1, drift_tol=drift / 50.0)
        report = NumericalHealthWatchdog(eng, loose).check(1)
        assert report.healthy
        assert eng.policy.name == "mixed"
        tight = WatchdogConfig(check_every=1, drift_tol=drift / 200.0)
        report = NumericalHealthWatchdog(eng, tight).check(1)
        assert not report.healthy
        assert report.promoted_to == "full64"


class TestCheckpointPrecision:
    def _make_sim(self, seed=3, precision=None):
        return Simulation(
            make_model(), seed=seed, cluster_size=4, precision=precision
        )

    def test_resume_under_mixed_is_bit_exact(self, tmp_path):
        from repro.dqmc import load_checkpoint, save_checkpoint

        path = tmp_path / "ckpt.npz"
        ref = self._make_sim(precision="mixed")
        ref.warmup(3)
        ref.measure_sweeps(4)
        ref.measure_sweeps(4)
        ref_obs = ref.collector.results()

        a = self._make_sim(precision="mixed")
        a.warmup(3)
        a.measure_sweeps(4)
        save_checkpoint(path, a)
        b = self._make_sim(precision="mixed")
        load_checkpoint(path, b)
        b.measure_sweeps(4)
        got_obs = b.collector.results()

        np.testing.assert_array_equal(b.field.h, ref.field.h)
        for name in ref_obs:
            np.testing.assert_array_equal(
                np.asarray(got_obs[name].mean), np.asarray(ref_obs[name].mean)
            )

    def test_promoted_policy_survives_the_round_trip(self, tmp_path):
        """Resuming a run the watchdog promoted must continue on the
        promoted rung, not the configured one."""
        from repro.dqmc import load_checkpoint, save_checkpoint
        from repro.telemetry import NumericalHealthWatchdog, WatchdogConfig

        path = tmp_path / "ckpt.npz"
        a = self._make_sim(precision="mixed")
        a.warmup(2)
        wd = NumericalHealthWatchdog(
            a.engine, WatchdogConfig(check_every=1, drift_tol=1e-300)
        )
        assert wd.check(1).promoted_to == "full64"
        assert a.precision == "full64"
        a.measure_sweeps(2)
        save_checkpoint(path, a)

        b = self._make_sim(precision="mixed")  # configured narrow ...
        load_checkpoint(path, b)
        assert b.precision == "full64"  # ... resumes promoted

        # and the continuation is bit-exact against the uninterrupted run
        a.measure_sweeps(2)
        b.measure_sweeps(2)
        np.testing.assert_array_equal(b.field.h, a.field.h)

    def test_checkpoint_without_precision_key_keeps_configured(self, tmp_path):
        """Pre-precision checkpoints (no header key) must load into
        whatever the receiving simulation was configured with."""
        from repro.dqmc import load_checkpoint, save_checkpoint

        path = tmp_path / "ckpt.npz"
        a = self._make_sim(precision="full64")
        a.warmup(2)
        save_checkpoint(path, a)
        # strip the key to emulate an old file
        data = dict(np.load(path, allow_pickle=False))
        import json

        header = json.loads(str(data["header"]))
        del header["precision"]
        data["header"] = np.array(json.dumps(header))
        np.savez(path, **data)

        b = self._make_sim(precision="mixed")
        load_checkpoint(path, b)
        assert b.precision == "mixed"


class TestPolicyAwareContracts:
    def test_mixed_backend_declares_float32_compute(self, monkeypatch):
        from repro.contracts import ContractViolation
        from repro.core import wrap_forward

        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        eng, _ = make_engine(precision="mixed")
        g64 = eng.boundary_greens(1, 0)
        g32 = np.asarray(g64, dtype=F32)
        # the backend argument carries the policy: float32 is now the
        # *declared* compute dtype, float64 the violation
        out = wrap_forward(
            eng.factory, eng.field, g32, 0, 1, backend=eng.backend
        )
        assert out.dtype == F32
        with pytest.raises(ContractViolation):
            wrap_forward(
                eng.factory,
                eng.field,
                np.asarray(g64, dtype=F64),
                0,
                1,
                backend=eng.backend,
            )

    def test_no_carrier_falls_back_to_ambient_policy(self, monkeypatch):
        from repro.contracts import ContractViolation, shape_contract

        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        monkeypatch.delenv(ENV_VAR, raising=False)

        @shape_contract("(n,n)", dtype="compute")
        def f(a: np.ndarray) -> np.ndarray:
            return a

        f(np.eye(2))  # ambient default: full64
        with pytest.raises(ContractViolation):
            f(np.eye(2, dtype=F32))
        monkeypatch.setenv(ENV_VAR, "mixed")
        f(np.eye(2, dtype=F32))  # ambient mixed: float32 is the contract


class TestAutotunePrecisionAxis:
    def test_params_roundtrip_with_precision(self):
        from repro.autotune import TuningParameters

        p = TuningParameters.make(8, 16, precision="mixed")
        assert p.precision == "mixed"
        assert "precision" in p.to_dict()
        assert TuningParameters.from_dict(p.to_dict()) == p
        assert "precision=mixed" in str(p)

    def test_precision_omitted_when_unset(self):
        from repro.autotune import TuningParameters

        p = TuningParameters.make(8, 16)
        assert p.precision is None
        assert "precision" not in p.to_dict()
        assert TuningParameters.from_dict(p.to_dict()) == p

    def test_invalid_precision_rejected(self):
        from repro.autotune import TuningParameters

        with pytest.raises(PrecisionError):
            TuningParameters.make(8, 16, precision="float16")

    def test_candidate_grid_gains_precision_axis(self):
        from repro.autotune import TuningParameters, candidate_grid

        baseline = TuningParameters.make(8, 16)
        base = candidate_grid(16, 16, baseline, max_candidates=1000)
        both = candidate_grid(
            16,
            16,
            baseline,
            precisions=["full64", "mixed"],
            max_candidates=1000,
        )
        # the baseline's own (unset) policy is kept at the front of the
        # axis, so the incumbent configuration is always trial 0
        assert len(both) == 3 * len(base)
        assert {p.precision for p in both} == {None, "full64", "mixed"}
        assert both[0] == baseline

    def test_grid_without_precisions_keeps_baseline_policy(self):
        from repro.autotune import TuningParameters, candidate_grid

        baseline = TuningParameters.make(8, 16)
        cands = candidate_grid(16, 16, baseline)
        # no precisions axis requested: every candidate inherits the
        # baseline's (unset) policy — tuning never narrows by default
        assert all(p.precision is None for p in cands)
        assert cands[0].cluster_size == baseline.cluster_size

    def test_tuner_restores_initial_policy_between_trials(self):
        """A narrowed trial must not leak its policy into later
        precision=None trials or into the locked winner."""
        from repro.autotune import TuningParameters, WarmupAutotuner

        sim = Simulation(
            make_model(n_slices=8), seed=3, cluster_size=4, precision="full64"
        )
        tuner = WarmupAutotuner(
            sim,
            candidates=[
                TuningParameters.make(4, 8, precision="mixed"),
                TuningParameters.make(4, 16),  # precision=None
            ],
            sweeps_per_candidate=1,
        )
        tuner.run()
        assert sim.precision == "full64"

    def test_tuner_rejects_candidates_plus_precisions(self):
        from repro.autotune import TuningParameters, WarmupAutotuner

        sim = Simulation(make_model(n_slices=8), seed=3, cluster_size=4)
        with pytest.raises(ValueError):
            WarmupAutotuner(
                sim,
                candidates=[TuningParameters.make(4, 8)],
                precisions=["mixed"],
            )


class TestPerfModelSinglePrecision:
    def test_sgemm_rate_doubles_on_c2050(self):
        from repro.gpu.perfmodel import TESLA_C2050

        n = 2048  # large enough to sit near the asymptote
        dp = TESLA_C2050.gemm_rate(n)
        sp = TESLA_C2050.gemm_rate(n, dtype=F32)
        assert sp == pytest.approx(2.0 * dp, rel=1e-6)

    def test_sgemm_time_beats_dgemm(self):
        from repro.gpu.perfmodel import TESLA_C2050

        t64 = TESLA_C2050.time_gemm(512, 512, 512)
        t32 = TESLA_C2050.time_gemm(512, 512, 512, dtype=F32)
        assert t32 < t64

    def test_unmodeled_sp_rate_falls_back_to_dp(self):
        import dataclasses

        from repro.gpu.perfmodel import TESLA_C2050

        model = dataclasses.replace(TESLA_C2050, gemm_rate_inf_sp=0.0)
        assert model.gemm_rate(512, dtype=F32) == model.gemm_rate(512)

    def test_device_upload_preserves_dtype_and_halves_bytes(self):
        from repro.gpu.device import SimulatedDevice

        dev = SimulatedDevice()
        a32 = dev.set_matrix(np.eye(64, dtype=F32))
        assert a32.dtype == F32
        bytes32 = dev.h2d_bytes
        dev.set_matrix(np.eye(64))
        assert dev.h2d_bytes - bytes32 == 2 * bytes32

    def test_device_copy_cannot_convert_width(self):
        from repro.gpu.device import DeviceError, SimulatedDevice

        dev = SimulatedDevice()
        dest = dev.alloc((8, 8), dtype=F64)
        with pytest.raises(DeviceError, match="dtype mismatch"):
            dev.set_matrix(np.eye(8, dtype=F32), dest)

    def test_gpu_sim_backend_runs_faster_under_mixed(self):
        """The end-to-end acceptance mechanism in miniature: the same
        engine work costs less simulated device time at float32."""
        elapsed = {}
        for name in ("full64", "mixed"):
            eng, rng = make_engine(
                seed=2, backend="gpu-sim", precision=name
            )
            eng.boundary_greens(1, 0)
            elapsed[name] = eng.device.elapsed
        assert elapsed["mixed"] < elapsed["full64"]


class TestCLIPrecision:
    INPUT = (
        "nx = 2\nny = 2\nu = 4.0\ndtau = 0.125\nl = 8\n"
        "north = 4\nnwarm = 1\nnpass = 2\nseed = 5\n"
    )

    @pytest.fixture
    def input_file(self, tmp_path):
        p = tmp_path / "run.in"
        p.write_text(self.INPUT)
        return p

    def test_info_reports_policy(self, input_file, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv(ENV_VAR, raising=False)
        assert main(["info", str(input_file)]) == 0
        assert "precision        full64" in capsys.readouterr().out

    def test_run_precision_flag(self, input_file, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "obs.npz"
        code = main(
            [
                "run",
                str(input_file),
                "--output",
                str(out),
                "--precision",
                "mixed",
            ]
        )
        assert code == 0
        assert "precision: mixed" in capsys.readouterr().out

    def test_run_rejects_unknown_policy(self, input_file, capsys):
        from repro.cli import main

        assert main(["run", str(input_file), "--precision", "half"]) == 2
        assert "unknown precision policy" in capsys.readouterr().err

    def test_config_file_precision_key(self, tmp_path, monkeypatch):
        from repro.dqmc import parse_config

        monkeypatch.delenv(ENV_VAR, raising=False)
        cfg = parse_config(self.INPUT + "precision = mixed\n")
        assert cfg.precision == "mixed"
        sim = cfg.simulation()
        assert sim.precision == "mixed"

    def test_config_rejects_unknown_precision(self):
        from repro.dqmc import parse_config

        with pytest.raises(ValueError, match="precision"):
            parse_config(self.INPUT + "precision = quad\n")
