"""Unit tests for the GPU/CPU performance models."""

import pytest

from repro.gpu import CPUModel, GPUModel, NEHALEM_8CORE, TESLA_C2050


class TestGPUModel:
    def test_documented_constants(self):
        m = TESLA_C2050
        # the calibration constants EXPERIMENTS.md quotes
        assert m.gemm_rate_inf == 300e9
        assert m.pcie_bandwidth == 6e9

    def test_gemm_time_monotone_in_size(self):
        m = TESLA_C2050
        times = [m.time_gemm(n, n, n) for n in (64, 128, 256, 512)]
        assert times == sorted(times)

    def test_rectangular_gemm_effective_size(self):
        """A (n, n, k) product uses the geometric-mean size for the
        efficiency ramp; timing must be symmetric in the dimensions."""
        m = TESLA_C2050
        assert m.time_gemm(100, 400, 160) == pytest.approx(
            m.time_gemm(400, 160, 100)
        )

    def test_bandwidth_kernel_linear_in_bytes(self):
        m = TESLA_C2050
        t1 = m.time_bandwidth_kernel(1e6) - m.kernel_latency
        t2 = m.time_bandwidth_kernel(2e6) - m.kernel_latency
        assert t2 == pytest.approx(2 * t1)

    def test_custom_model(self):
        m = GPUModel(
            name="toy", gemm_rate_inf=1e9, gemm_n_half=1e-6,
            mem_bandwidth=1e9, pcie_bandwidth=1e9,
            kernel_latency=0.0, transfer_latency=0.0,
        )
        # with a negligible half-size the rate is flat at the asymptote
        assert m.gemm_rate(1000) == pytest.approx(1e9, rel=1e-9)
        assert m.time_gemm(10, 10, 10) == pytest.approx(2000 / 1e9)


class TestCPUModel:
    def test_qr_slower_than_gemm(self):
        m = NEHALEM_8CORE
        n = 512
        t_gemm = m.time_gemm(n, n, n)
        t_qr = m.time_qr(n, n)
        t_qrp = m.time_qr(n, n, pivoted=True)
        assert t_qr > t_gemm
        assert t_qrp > t_qr  # the Fig 1 ordering, in model form

    def test_fraction_semantics(self):
        m = CPUModel(
            name="toy", gemm_rate_inf=100e9, gemm_n_half=1e-6,
            qr_fraction=0.5, qrp_fraction=0.25,
        )
        # qr at half the gemm rate: time ratio = flops ratio * 2
        assert m.time_qr(256, 256, pivoted=True) > m.time_qr(256, 256)

    def test_rate_ramp(self):
        m = NEHALEM_8CORE
        assert m.gemm_rate(64) < m.gemm_rate(1024) < m.gemm_rate_inf
