"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.io import load_observables

INPUT = """\
nx = 2
ny = 2
u = 4.0
dtau = 0.125
l = 8
north = 4
nwarm = 2
npass = 6
seed = 5
"""


@pytest.fixture
def input_file(tmp_path):
    p = tmp_path / "run.in"
    p.write_text(INPUT)
    return p


class TestVersion:
    def test_prints_version(self, capsys):
        assert main(["version"]) == 0
        from repro import __version__

        assert capsys.readouterr().out.strip() == __version__


class TestInfo:
    def test_reports_derived_quantities(self, input_file, capsys):
        assert main(["info", str(input_file)]) == 0
        out = capsys.readouterr().out
        assert "beta = 1" in out
        assert "conditioning" in out
        assert "N = 4" in out

    def test_reports_qmclint_version(self, input_file, capsys):
        import re

        assert main(["info", str(input_file)]) == 0
        out = capsys.readouterr().out
        # e.g. "qmclint          2.0.0 (14 rules)" — pins the analysis
        # gate in bug reports from source checkouts
        assert re.search(r"qmclint\s+\d+\.\d+\.\d+ \(\d+ rules\)", out)

    def test_warns_on_unsafe_k(self, tmp_path, capsys):
        p = tmp_path / "hot.in"
        p.write_text(
            "nx = 2\nny = 2\nu = 8.0\ndtau = 0.5\nl = 10\nnorth = 10\n"
        )
        main(["info", str(p)])
        assert "WARNING" in capsys.readouterr().out


class TestRun:
    def test_produces_archive(self, input_file, capsys):
        assert main(["run", str(input_file), "--quiet"]) == 0
        out = input_file.with_suffix(".npz")
        assert out.exists()
        obs, meta = load_observables(out)
        assert "density" in obs
        assert obs["sign"].n_samples == 6
        assert 0 <= meta["acceptance"] <= 1

    def test_explicit_output_path(self, input_file, tmp_path):
        target = tmp_path / "custom.npz"
        main(["run", str(input_file), "--quiet", "--output", str(target)])
        assert target.exists()

    def test_checkpoint_resume_matches_straight_run(self, input_file, tmp_path):
        """Interrupting at a checkpoint and re-invoking the CLI must give
        the same final observables as one uninterrupted run."""
        straight_out = tmp_path / "straight.npz"
        main(["run", str(input_file), "--quiet", "--output", str(straight_out)])

        ck = tmp_path / "ck.npz"
        part_out = tmp_path / "part.npz"
        # run with checkpointing every 2 sweeps, then "crash" by rerunning:
        # the second invocation resumes from the checkpoint file
        main([
            "run", str(input_file), "--quiet", "--output", str(part_out),
            "--checkpoint", str(ck), "--checkpoint-every", "2",
        ])
        # rerun: finds the finished checkpoint, nothing more to do, same result
        main([
            "run", str(input_file), "--quiet", "--output", str(part_out),
            "--checkpoint", str(ck), "--checkpoint-every", "2",
        ])
        a, _ = load_observables(straight_out)
        b, _ = load_observables(part_out)
        np.testing.assert_allclose(
            np.asarray(a["double_occupancy"].mean),
            np.asarray(b["double_occupancy"].mean),
        )

    def test_true_interruption_resume(self, input_file, tmp_path, monkeypatch):
        """Simulate a crash mid-run: checkpoint after 2 of 6 sweeps, then
        resume with a fresh CLI invocation and compare to uninterrupted."""
        from repro.dqmc import load_config, save_checkpoint

        cfg = load_config(input_file)
        sim = cfg.simulation()
        sim.warmup(cfg.nwarm)
        sim.measure_sweeps(2)
        ck = tmp_path / "crash.npz"
        save_checkpoint(ck, sim)

        out = tmp_path / "resumed.npz"
        main([
            "run", str(input_file), "--quiet", "--output", str(out),
            "--checkpoint", str(ck), "--checkpoint-every", "100",
        ])
        ref_out = tmp_path / "ref.npz"
        main(["run", str(input_file), "--quiet", "--output", str(ref_out)])
        a, _ = load_observables(out)
        b, _ = load_observables(ref_out)
        np.testing.assert_allclose(
            np.asarray(a["kinetic_energy"].mean),
            np.asarray(b["kinetic_energy"].mean),
        )
