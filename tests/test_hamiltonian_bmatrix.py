"""Unit tests for B-matrix construction and application."""

import numpy as np
import pytest

from tests.helpers import relerr


class TestBMatrix:
    def test_definition(self, factory4x4, field4x4):
        """B = diag(v) @ expK by definition (Eq. 2 of the paper)."""
        for sigma in (1, -1):
            b = factory4x4.b_matrix(field4x4, 3, sigma)
            v = field4x4.v_diagonal(3, sigma, factory4x4.nu)
            np.testing.assert_allclose(
                b, np.diag(v) @ factory4x4.expk, atol=1e-14
            )

    def test_b_inverse_is_inverse(self, factory4x4, field4x4):
        b = factory4x4.b_matrix(field4x4, 0, 1)
        binv = factory4x4.b_inverse(field4x4, 0, 1)
        np.testing.assert_allclose(b @ binv, np.eye(16), atol=1e-12)
        np.testing.assert_allclose(binv @ b, np.eye(16), atol=1e-12)

    def test_apply_b_left_matches_dense(self, factory4x4, field4x4, rng):
        a = rng.normal(size=(16, 16))
        dense = factory4x4.b_matrix(field4x4, 5, -1) @ a
        applied = factory4x4.apply_b_left(field4x4, 5, -1, a)
        assert relerr(applied, dense) < 1e-14

    def test_apply_b_inv_right_matches_dense(self, factory4x4, field4x4, rng):
        a = rng.normal(size=(16, 16))
        dense = a @ factory4x4.b_inverse(field4x4, 5, -1)
        applied = factory4x4.apply_b_inv_right(field4x4, 5, -1, a.copy())
        assert relerr(applied, dense) < 1e-13

    def test_spin_symmetry_u0(self, rng):
        """At U = 0 the B matrices are spin independent."""
        from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice

        model = HubbardModel(SquareLattice(3, 3), u=0.0, beta=1.0, n_slices=10)
        fac = BMatrixFactory(model)
        f = HSField.random(10, 9, rng)
        np.testing.assert_array_equal(
            fac.b_matrix(f, 0, 1), fac.b_matrix(f, 0, -1)
        )

    def test_full_product_default_order(self, factory4x4, field4x4):
        """full_product must be B_{L-1} ... B_0 (rightmost first)."""
        expected = np.eye(16)
        for l in range(field4x4.n_slices):
            expected = factory4x4.b_matrix(field4x4, l, 1) @ expected
        got = factory4x4.full_product(field4x4, 1)
        assert relerr(got, expected) < 1e-12

    def test_full_product_custom_order(self, factory4x4, field4x4):
        order = [3, 1, 0]
        expected = (
            factory4x4.b_matrix(field4x4, 0, 1)
            @ factory4x4.b_matrix(field4x4, 1, 1)
            @ factory4x4.b_matrix(field4x4, 3, 1)
        )
        got = factory4x4.full_product(field4x4, 1, slice_order=order)
        assert relerr(got, expected) < 1e-13

    def test_determinant_positive(self, factory4x4, field4x4):
        """Each B = diag(e^{...}) e^{-dtau K} has positive determinant."""
        b = factory4x4.b_matrix(field4x4, 0, 1)
        sign, _ = np.linalg.slogdet(b)
        assert sign == 1.0
