"""Unit tests for flop accounting."""

import threading

import numpy as np
import pytest

from repro.linalg import flops
from repro.linalg import (
    column_norms,
    gemm_flops,
    qr_flops,
    qr_nopivot,
    qr_pivoted,
    qrp_flops,
    tally,
)


class TestFormulas:
    def test_gemm(self):
        assert gemm_flops(2, 3, 4) == 48

    def test_qr_square_leading_order(self):
        # 2 n^2 (m - n/3) + 4(mn^2 - n^3/3); for m = n both give (4/3 +
        # 8/3) n^3 = 4 n^3.
        n = 300
        assert qr_flops(n, n) == pytest.approx(4.0 * n**3, rel=1e-12)

    def test_qrp_exceeds_qr(self):
        assert qrp_flops(100, 100) > qr_flops(100, 100)

    def test_scale_and_norms(self):
        assert flops.scale_flops(10, 20) == 200
        assert flops.norms_flops(10, 20) == 400

    def test_lu_solve(self):
        n = 30
        expected = 2 * n**3 / 3 + 2 * n * n * n
        assert flops.lu_solve_flops(n, n) == pytest.approx(expected)


class TestTally:
    def test_records_categories(self):
        with tally() as t:
            flops.record("a", 10)
            flops.record("a", 5, nbytes=100)
            flops.record("b", 1)
        assert t.flops == {"a": 15.0, "b": 1.0}
        assert t.bytes_moved == {"a": 100.0}
        assert t.total_flops == 16.0

    def test_no_tally_is_noop(self):
        flops.record("ignored", 1e9)  # must not raise
        assert flops.current_tally() is None

    def test_nested_tallies_merge_outward(self):
        with tally() as outer:
            flops.record("x", 1)
            with tally() as inner:
                flops.record("x", 2)
            assert inner.total_flops == 2
        assert outer.flops["x"] == 3.0

    def test_library_calls_feed_tally(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(16, 16))
        with tally() as t:
            qr_nopivot(a)
            qr_pivoted(a)
            column_norms(a)
        assert t.flops["qr"] == qr_flops(16, 16)
        assert t.flops["qrp"] == qrp_flops(16, 16)
        assert t.flops["norms"] == flops.norms_flops(16, 16)

    def test_gflops_rate(self):
        t = flops.FlopTally()
        t.add("a", 2e9)
        assert t.gflops_rate(2.0) == pytest.approx(1.0)
        assert t.gflops_rate(0.0) == 0.0

    def test_reset(self):
        t = flops.FlopTally()
        t.add("a", 1, nbytes=2)
        t.reset()
        assert t.total_flops == 0 and t.total_bytes == 0

    def test_thread_local_isolation(self):
        """A tally installed in one thread must not leak into another."""
        seen = {}

        def worker():
            seen["inner"] = flops.current_tally()

        with tally():
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        assert seen["inner"] is None
