"""Unit tests for the stable (I + QDT)^{-1} evaluation."""

import numpy as np
import pytest

from repro.linalg import (
    GradedDecomposition,
    naive_inverse,
    stable_inverse_from_graded,
    stable_log_det_from_graded,
)


@pytest.fixture
def rng():
    return np.random.default_rng(5)


def make_graded(rng, n=10, span=4, signs=True):
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    d = np.logspace(span / 2.0, -span / 2.0, n)
    if signs:
        d *= rng.choice([-1.0, 1.0], size=n)
    t = np.triu(rng.normal(size=(n, n)))
    np.fill_diagonal(t, 1.0)
    return GradedDecomposition(q=q, d=d, t=t)


class TestStableInverse:
    def test_matches_naive_on_benign_grading(self, rng):
        g = make_graded(rng, span=4)
        expected = naive_inverse(g.dense())
        got = stable_inverse_from_graded(g)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)

    def test_survives_extreme_grading_analytic(self, rng):
        """With a 10^200 dynamic range the dense product is not even
        representable; a diagonal chain has the exact answer
        ``G = diag(1/(1+d))``, which the stable path must reproduce."""
        d = np.array([1e100, 1e40, 1e3, 1.0, 1e-3, 1e-40, 1e-100])
        n = d.size
        g = GradedDecomposition(q=np.eye(n), d=d, t=np.eye(n))
        ginv = stable_inverse_from_graded(g)
        np.testing.assert_allclose(ginv, np.diag(1.0 / (1.0 + d)), rtol=1e-12)

    def test_finite_at_extreme_grading_random(self, rng):
        n = 8
        q, _ = np.linalg.qr(rng.normal(size=(n, n)))
        d = np.logspace(100, -100, n)
        t = np.triu(rng.normal(size=(n, n)))
        np.fill_diagonal(t, 1.0)
        g = GradedDecomposition(q=q, d=d, t=t)
        ginv = stable_inverse_from_graded(g)
        assert np.all(np.isfinite(ginv))
        # G must annihilate the huge directions: ||G|| stays O(1).
        assert np.linalg.norm(ginv) < 1e3

    def test_identity_chain(self):
        n = 6
        g = GradedDecomposition(q=np.eye(n), d=np.ones(n), t=np.eye(n))
        np.testing.assert_allclose(
            stable_inverse_from_graded(g), 0.5 * np.eye(n), atol=1e-14
        )


class TestStableLogDet:
    def test_matches_direct_determinant(self, rng):
        g = make_graded(rng, span=3)
        sign, logdet = stable_log_det_from_graded(g)
        direct = np.linalg.det(np.eye(g.n) + g.dense())
        assert sign == pytest.approx(np.sign(direct))
        assert logdet == pytest.approx(np.log(abs(direct)), rel=1e-9)

    def test_no_overflow_at_extreme_grading(self, rng):
        n = 8
        q, _ = np.linalg.qr(rng.normal(size=(n, n)))
        d = np.logspace(150, -150, n)
        t = np.triu(rng.normal(size=(n, n)))
        np.fill_diagonal(t, 1.0)
        g = GradedDecomposition(q=q, d=d, t=t)
        sign, logdet = stable_log_det_from_graded(g)
        assert np.isfinite(logdet)
        assert sign in (-1.0, 1.0)

    def test_identity_value(self):
        n = 4
        g = GradedDecomposition(q=np.eye(n), d=np.ones(n), t=np.eye(n))
        sign, logdet = stable_log_det_from_graded(g)
        assert sign == 1.0
        assert logdet == pytest.approx(n * np.log(2.0))


class TestNaiveInverse:
    def test_simple_case(self):
        a = np.diag([1.0, 3.0])
        np.testing.assert_allclose(
            naive_inverse(a), np.diag([0.5, 0.25]), atol=1e-14
        )

    def test_breaks_down_at_extreme_conditioning(self, rng):
        """Documents *why* stratification exists: the naive inverse loses
        all accuracy once the product's range exceeds double precision."""
        import warnings

        g = make_graded(rng, n=8, span=40, signs=False)
        dense = g.dense()
        with warnings.catch_warnings():
            # the ill-conditioned solve warning is the expected symptom
            warnings.simplefilter("ignore")
            naive = naive_inverse(dense)
        stable = stable_inverse_from_graded(g)
        err = np.linalg.norm(naive - stable) / np.linalg.norm(stable)
        assert err > 1e-8  # catastrophic relative to the 1e-12 stable path
