"""Unit tests for the cluster recycling cache."""

import numpy as np
import pytest

from repro.core import ClusterCache, cluster_product
from tests.helpers import relerr


@pytest.fixture
def cache(factory4x4, field4x4):
    return ClusterCache(factory4x4, field4x4, cluster_size=5)


class TestCacheBasics:
    def test_get_matches_direct_product(self, cache, factory4x4, field4x4):
        for j in range(cache.n_clusters):
            direct = cluster_product(factory4x4, field4x4, 1, cache.ranges[j])
            assert relerr(cache.get(1, j), direct) < 1e-14

    def test_hits_and_misses(self, cache):
        cache.get(1, 0)
        cache.get(1, 0)
        cache.get(-1, 0)
        assert cache.misses == 2 and cache.hits == 1

    def test_cached_object_identity(self, cache):
        a = cache.get(1, 2)
        b = cache.get(1, 2)
        assert a is b  # recycling, not recompute

    def test_cluster_of_slice(self, cache):
        assert cache.cluster_of_slice(0) == 0
        assert cache.cluster_of_slice(4) == 0
        assert cache.cluster_of_slice(5) == 1
        assert cache.cluster_of_slice(19) == 3
        with pytest.raises(IndexError):
            cache.cluster_of_slice(20)


class TestInvalidation:
    def test_invalidate_slice_refreshes_owner_only(self, cache, field4x4):
        before_own = cache.get(1, 1)
        before_other = cache.get(1, 2)
        field4x4.flip(6, 3)  # slice 6 lives in cluster 1
        cache.invalidate_slice(6)
        after_own = cache.get(1, 1)
        after_other = cache.get(1, 2)
        assert after_own is not before_own
        assert relerr(after_own, before_own) > 1e-12  # value truly changed
        assert after_other is before_other

    def test_invalidation_covers_both_spins(self, cache, field4x4):
        up = cache.get(1, 0)
        dn = cache.get(-1, 0)
        field4x4.flip(0, 0)
        cache.invalidate_slice(0)
        assert cache.get(1, 0) is not up
        assert cache.get(-1, 0) is not dn

    def test_invalidate_all(self, cache):
        objs = [cache.get(1, j) for j in range(cache.n_clusters)]
        cache.invalidate_all()
        assert all(
            cache.get(1, j) is not o for j, o in enumerate(objs)
        )

    def test_stale_cache_would_be_wrong(self, cache, factory4x4, field4x4):
        """Sanity: without invalidation the cached product is stale —
        this is the invariant invalidate_slice protects."""
        stale = cache.get(1, 0)
        field4x4.flip(0, 0)
        fresh = cluster_product(factory4x4, field4x4, 1, cache.ranges[0])
        assert relerr(stale, fresh) > 1e-12
        cache.invalidate_slice(0)
        assert relerr(cache.get(1, 0), fresh) < 1e-14


class TestChain:
    def test_chain_rotation_order(self, cache):
        ids = [id(cache.get(1, j)) for j in range(cache.n_clusters)]
        chain = cache.chain(1, start_cluster=2)
        assert [id(m) for m in chain] == [ids[2], ids[3], ids[0], ids[1]]

    def test_chain_start_zero_is_natural_order(self, cache):
        chain = cache.chain(1, 0)
        assert len(chain) == cache.n_clusters

    def test_chain_bad_start_raises(self, cache):
        with pytest.raises(IndexError):
            cache.chain(1, 4)

    def test_product_fn_override(self, factory4x4, field4x4):
        calls = []

        def product_fn(sigma, slices):
            calls.append((sigma, tuple(slices)))
            return np.eye(16)

        cache = ClusterCache(
            factory4x4, field4x4, cluster_size=10, product_fn=product_fn
        )
        out = cache.get(1, 1)
        np.testing.assert_array_equal(out, np.eye(16))
        assert calls == [(1, tuple(range(10, 20)))]
