"""Unit tests for the thread-parallel fine-grain kernels."""

import numpy as np
import pytest

from repro.parallel import (
    parallel_column_norms,
    parallel_prepivot_permutation,
    scale_columns,
    scale_rows,
    scale_two_sided,
)
from repro.linalg import column_norms, prepivot_permutation


@pytest.fixture
def rng():
    return np.random.default_rng(31)


# sizes straddling the threading grain (128 rows)
SIZES = [(16, 16), (127, 50), (128, 64), (400, 300), (1000, 8)]


class TestScalings:
    @pytest.mark.parametrize("shape", SIZES)
    def test_scale_rows(self, rng, shape):
        a = rng.normal(size=shape)
        v = rng.normal(size=shape[0]) + 2.0
        np.testing.assert_allclose(scale_rows(a, v), np.diag(v) @ a, atol=1e-13)

    @pytest.mark.parametrize("shape", SIZES)
    def test_scale_columns(self, rng, shape):
        a = rng.normal(size=shape)
        v = rng.normal(size=shape[1]) + 2.0
        np.testing.assert_allclose(scale_columns(a, v), a @ np.diag(v), atol=1e-13)

    @pytest.mark.parametrize("n", [16, 128, 400])
    def test_scale_two_sided(self, rng, n):
        a = rng.normal(size=(n, n))
        v = rng.uniform(0.5, 2.0, size=n)
        expected = np.diag(v) @ a @ np.diag(1.0 / v)
        np.testing.assert_allclose(scale_two_sided(a, v), expected, atol=1e-12)

    def test_out_parameter_reused(self, rng):
        a = rng.normal(size=(200, 200))
        v = np.full(200, 2.0)
        out = np.empty_like(a)
        res = scale_rows(a, v, out=out)
        assert res is out

    def test_shape_validation(self, rng):
        a = rng.normal(size=(4, 5))
        with pytest.raises(ValueError):
            scale_rows(a, np.ones(5))
        with pytest.raises(ValueError):
            scale_columns(a, np.ones(4))
        with pytest.raises(ValueError):
            scale_two_sided(a, np.ones(4))


class TestParallelNorms:
    @pytest.mark.parametrize("shape", SIZES)
    def test_matches_serial(self, rng, shape):
        a = rng.normal(size=shape)
        np.testing.assert_allclose(
            parallel_column_norms(a), column_norms(a), rtol=1e-12
        )

    def test_permutation_matches_serial(self, rng):
        a = rng.normal(size=(300, 300)) * np.logspace(0, -6, 300)[None, :]
        np.testing.assert_array_equal(
            parallel_prepivot_permutation(a), prepivot_permutation(a)
        )

    def test_graded_matrix_identity_permutation(self, rng):
        # steep grading: adjacent column ratio ~0.58, far outside the
        # ~4% statistical spread of Gaussian column norms, so the sorted
        # order must be exactly the original one
        a = rng.normal(size=(256, 256)) * np.logspace(0, -60, 256)[None, :]
        assert np.array_equal(
            parallel_prepivot_permutation(a), np.arange(256)
        )
