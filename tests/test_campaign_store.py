"""Unit tests for the results catalog and replica merging."""

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    ResultsCatalog,
    SchedulerConfig,
    merge_estimates,
    run_campaign,
)
from repro.campaign.store import INDEX_NAME, CatalogError
from repro.measure import BinnedEstimate

BASE = {
    "nx": 2, "ny": 2, "dtau": 0.125, "l": 8, "north": 4,
    "nwarm": 2, "npass": 4,
}


def est(mean, error, n_bins=2, n_samples=4):
    return BinnedEstimate(
        mean=np.asarray(mean), error=np.asarray(error),
        n_bins=n_bins, n_samples=n_samples,
    )


class TestMergeEstimates:
    def test_single_passthrough(self):
        merged = merge_estimates([est(1.5, 0.1)])
        assert float(merged.mean) == pytest.approx(1.5)
        assert float(merged.error) == pytest.approx(0.1)

    def test_equal_weights(self):
        """Two equal-sample runs: mean averages, error shrinks ~1/sqrt(2)."""
        merged = merge_estimates([est(1.0, 0.2), est(3.0, 0.2)])
        assert float(merged.mean) == pytest.approx(2.0)
        assert float(merged.error) == pytest.approx(0.2 / np.sqrt(2))
        assert merged.n_bins == 4
        assert merged.n_samples == 8

    def test_sample_weighting_matches_concatenation(self):
        """3x the samples -> 3x the weight, exactly as if the streams
        had been concatenated."""
        merged = merge_estimates(
            [est(1.0, 0.1, n_samples=3), est(5.0, 0.1, n_samples=1)]
        )
        assert float(merged.mean) == pytest.approx((3 * 1.0 + 1 * 5.0) / 4)

    def test_array_observables(self):
        a = est([1.0, 2.0], [0.1, 0.1])
        b = est([3.0, 4.0], [0.1, 0.1])
        merged = merge_estimates([a, b])
        np.testing.assert_allclose(merged.mean, [2.0, 3.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="nothing to merge"):
            merge_estimates([])

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError, match="zero samples"):
            merge_estimates([est(1.0, 0.1, n_samples=0)])


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One real (tiny) campaign shared by the catalog tests: a 2-point
    U grid with 2 replicas each, run on the thread executor."""
    cdir = tmp_path_factory.mktemp("store") / "camp"
    spec = CampaignSpec(
        name="store",
        base=dict(BASE),
        grid={"u": [2.0, 4.0]},
        replicas=2,
        base_seed=13,
        checkpoint_every=0,
    )
    summary = run_campaign(
        spec, cdir, config=SchedulerConfig(executor="thread")
    )
    assert summary.all_done
    return cdir


class TestResultsCatalog:
    def test_load_and_select(self, campaign):
        catalog = ResultsCatalog.load(campaign)
        assert len(catalog) == 4
        u2 = catalog.select(u=2.0)
        assert len(u2) == 2
        assert all(r.params["u"] == 2.0 for r in u2)
        assert all(r.has_results for r in catalog.select())

    def test_select_is_case_insensitive_and_float_aware(self, campaign):
        catalog = ResultsCatalog.load(campaign)
        assert len(catalog.select(U=2)) == 2  # int 2 matches float 2.0
        assert catalog.select(u=99.0) == []

    def test_estimates_and_merged(self, campaign):
        catalog = ResultsCatalog.load(campaign)
        singles = catalog.estimates("density", u=4.0)
        assert len(singles) == 2
        merged = catalog.merged("density", u=4.0)
        assert merged.n_samples == sum(e.n_samples for e in singles)
        lo = min(float(np.min(np.asarray(e.mean))) for e in singles)
        hi = max(float(np.max(np.asarray(e.mean))) for e in singles)
        assert lo <= float(np.mean(np.asarray(merged.mean))) <= hi

    def test_merged_no_match_raises(self, campaign):
        catalog = ResultsCatalog.load(campaign)
        with pytest.raises(CatalogError, match="no finished job"):
            catalog.merged("density", u=99.0)

    def test_grid_values(self, campaign):
        catalog = ResultsCatalog.load(campaign)
        assert catalog.grid_values("u") == [2.0, 4.0]

    def test_index_written_and_consistent(self, campaign):
        index = json.loads((campaign / INDEX_NAME).read_text())
        assert index["name"] == "store"
        assert len(index["jobs"]) == 4
        for entry in index["jobs"].values():
            assert entry["status"] == "done"
            assert entry["runs"] == 1
            assert (campaign / entry["results"]).exists()

    def test_load_survives_missing_index(self, campaign):
        """catalog.json is a cache; the manifest is the source of truth."""
        (campaign / INDEX_NAME).rename(campaign / "catalog.json.bak")
        try:
            catalog = ResultsCatalog.load(campaign)
            assert len(catalog.select(u=2.0)) == 2
        finally:
            (campaign / "catalog.json.bak").rename(campaign / INDEX_NAME)

    def test_replicas_have_distinct_samples(self, campaign):
        """The two replicas of one grid point are independent streams."""
        catalog = ResultsCatalog.load(campaign)
        a, b = catalog.estimates("double_occupancy", u=2.0)
        assert float(np.asarray(a.mean)) != float(np.asarray(b.mean))

    def test_no_results_record_raises(self, tmp_path):
        from repro.campaign.store import JobRecord

        rec = JobRecord(
            job_id="abc", index=0, params={}, status="failed",
            runs=3, path=None,
        )
        assert not rec.has_results
        with pytest.raises(CatalogError, match="no results"):
            rec.observables()
