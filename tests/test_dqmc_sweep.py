"""Unit tests for the Metropolis sweep."""

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import GreensFunctionEngine
from repro.dqmc import SweepStats, sweep
from tests.helpers import brute_greens, relerr


def small_engine(u=4.0, beta=1.5, n_slices=12, cluster=4, seed=0, lx=2, ly=2):
    model = HubbardModel(SquareLattice(lx, ly), u=u, beta=beta, n_slices=n_slices)
    rng = np.random.default_rng(seed)
    field = HSField.random(n_slices, model.n_sites, rng)
    fac = BMatrixFactory(model)
    return GreensFunctionEngine(fac, field, cluster_size=cluster), rng


class TestSweepMechanics:
    def test_counters(self):
        eng, rng = small_engine()
        st = sweep(eng, rng)
        assert st.proposed == 12 * 4
        assert 0 <= st.accepted <= st.proposed
        assert st.refreshes == eng.n_clusters

    def test_greens_consistent_after_sweep(self):
        """After a sweep mutates the field, a fresh boundary G computed by
        the engine must match brute force on the *current* field — i.e.
        all invalidation and incremental updates composed correctly."""
        eng, rng = small_engine()
        sweep(eng, rng)
        for sigma in (1, -1):
            g = eng.boundary_greens(sigma, 0)
            expected = brute_greens(eng.factory, eng.field, sigma)
            assert relerr(g, expected) < 1e-8

    def test_deterministic_given_seed(self):
        eng1, rng1 = small_engine(seed=5)
        eng2, rng2 = small_engine(seed=5)
        st1 = sweep(eng1, rng1)
        st2 = sweep(eng2, rng2)
        assert st1.accepted == st2.accepted
        assert np.array_equal(eng1.field.h, eng2.field.h)

    def test_different_seeds_diverge(self):
        eng1, rng1 = small_engine(seed=5)
        eng2, rng2 = small_engine(seed=6)
        sweep(eng1, rng1)
        sweep(eng2, rng2)
        assert not np.array_equal(eng1.field.h, eng2.field.h)

    def test_delay_size_does_not_change_physics_path(self):
        """Identical random stream + identical decisions regardless of
        the delayed-update block size (it is a pure performance knob)."""
        for delay in (1, 4, 64):
            eng, rng = small_engine(seed=9)
            sweep(eng, rng, max_delay=delay)
            if delay == 1:
                ref = eng.field.h.copy()
            else:
                assert np.array_equal(eng.field.h, ref)

    def test_u0_always_accepts(self):
        eng, rng = small_engine(u=0.0)
        st = sweep(eng, rng)
        assert st.accepted == st.proposed
        assert st.sign == 1.0

    def test_on_boundary_callback(self):
        eng, rng = small_engine()
        calls = []

        def cb(c, g, sign):
            calls.append(c)
            assert set(g) == {1, -1}
            assert g[1].shape == (4, 4)
            assert sign in (-1.0, 1.0)

        sweep(eng, rng, on_boundary=cb)
        assert calls == list(range(eng.n_clusters))

    def test_start_sign_threaded_through(self):
        eng, rng = small_engine(u=0.0)
        st = sweep(eng, rng, start_sign=-1.0)
        assert st.sign == -1.0  # U=0: no ratio can flip it


class TestBackwardSweep:
    def test_visits_every_entry_once(self):
        eng, rng = small_engine()
        st = sweep(eng, rng, direction="backward")
        assert st.proposed == 12 * 4

    def test_greens_consistent_after_backward_sweep(self):
        eng, rng = small_engine(seed=4)
        sweep(eng, rng, direction="backward")
        for sigma in (1, -1):
            g = eng.boundary_greens(sigma, 0)
            expected = brute_greens(eng.factory, eng.field, sigma)
            assert relerr(g, expected) < 1e-8

    def test_direction_changes_the_path(self):
        f1, _ = small_engine(seed=5)[0].field, None
        eng_f, rng_f = small_engine(seed=5)
        eng_b, rng_b = small_engine(seed=5)
        sweep(eng_f, rng_f, direction="forward")
        sweep(eng_b, rng_b, direction="backward")
        assert not np.array_equal(eng_f.field.h, eng_b.field.h)

    def test_unknown_direction_rejected(self):
        eng, rng = small_engine()
        with pytest.raises(ValueError):
            sweep(eng, rng, direction="sideways")

    def test_half_filling_invariants_hold_backward(self):
        eng, rng = small_engine(u=6.0, beta=2.0)
        st = sweep(eng, rng, direction="backward")
        assert st.negative_ratios == 0 and st.sign == 1.0

    def test_alternating_preserves_greens_consistency(self):
        eng, rng = small_engine(seed=8, lx=4, ly=2)
        for d in ("forward", "backward", "forward", "backward"):
            sweep(eng, rng, direction=d)
        g = eng.boundary_greens(1, 0)
        expected = brute_greens(eng.factory, eng.field, 1)
        assert relerr(g, expected) < 1e-8


class TestSweepStats:
    def test_merge(self):
        a = SweepStats(proposed=10, accepted=5, negative_ratios=1, refreshes=2)
        b = SweepStats(proposed=4, accepted=1, negative_ratios=0, refreshes=1)
        a.merge(b)
        assert (a.proposed, a.accepted, a.negative_ratios, a.refreshes) == (
            14, 6, 1, 3,
        )

    def test_acceptance_rate(self):
        assert SweepStats(proposed=8, accepted=2).acceptance_rate == 0.25
        assert SweepStats().acceptance_rate == 0.0


class TestHalfFillingInvariants:
    def test_sign_stays_positive(self):
        eng, rng = small_engine(u=6.0, beta=2.0)
        st = sweep(eng, rng)
        assert st.negative_ratios == 0
        assert st.sign == 1.0

    def test_per_config_density_is_one(self):
        """Particle-hole symmetry at mu = 0: n_up(i) + n_dn(i) = 1 per
        site for every configuration."""
        eng, rng = small_engine(u=4.0, beta=2.0, lx=4, ly=2)
        sweep(eng, rng)
        g_up = eng.boundary_greens(1, 0)
        g_dn = eng.boundary_greens(-1, 0)
        total = (1 - np.diag(g_up)) + (1 - np.diag(g_dn))
        np.testing.assert_allclose(total, 1.0, atol=1e-9)
