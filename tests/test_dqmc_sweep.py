"""Unit tests for the Metropolis sweep."""

import sys

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice, Telemetry
from repro.core import DelayedUpdater, GreensFunctionEngine
from repro.dqmc import SweepStats, sweep
from repro.dqmc.sweep import SINGULAR_THRESHOLD
from repro.telemetry import TelemetryWriter, read_events
from tests.helpers import brute_greens, relerr


def small_engine(u=4.0, beta=1.5, n_slices=12, cluster=4, seed=0, lx=2, ly=2):
    model = HubbardModel(SquareLattice(lx, ly), u=u, beta=beta, n_slices=n_slices)
    rng = np.random.default_rng(seed)
    field = HSField.random(n_slices, model.n_sites, rng)
    fac = BMatrixFactory(model)
    return GreensFunctionEngine(fac, field, cluster_size=cluster), rng


class TestSweepMechanics:
    def test_counters(self):
        eng, rng = small_engine()
        st = sweep(eng, rng)
        assert st.proposed == 12 * 4
        assert 0 <= st.accepted <= st.proposed
        assert st.refreshes == eng.n_clusters

    def test_greens_consistent_after_sweep(self):
        """After a sweep mutates the field, a fresh boundary G computed by
        the engine must match brute force on the *current* field — i.e.
        all invalidation and incremental updates composed correctly."""
        eng, rng = small_engine()
        sweep(eng, rng)
        for sigma in (1, -1):
            g = eng.boundary_greens(sigma, 0)
            expected = brute_greens(eng.factory, eng.field, sigma)
            assert relerr(g, expected) < 1e-8

    def test_deterministic_given_seed(self):
        eng1, rng1 = small_engine(seed=5)
        eng2, rng2 = small_engine(seed=5)
        st1 = sweep(eng1, rng1)
        st2 = sweep(eng2, rng2)
        assert st1.accepted == st2.accepted
        assert np.array_equal(eng1.field.h, eng2.field.h)

    def test_different_seeds_diverge(self):
        eng1, rng1 = small_engine(seed=5)
        eng2, rng2 = small_engine(seed=6)
        sweep(eng1, rng1)
        sweep(eng2, rng2)
        assert not np.array_equal(eng1.field.h, eng2.field.h)

    def test_delay_size_does_not_change_physics_path(self):
        """Identical random stream + identical decisions regardless of
        the delayed-update block size (it is a pure performance knob)."""
        for delay in (1, 4, 64):
            eng, rng = small_engine(seed=9)
            sweep(eng, rng, max_delay=delay)
            if delay == 1:
                ref = eng.field.h.copy()
            else:
                assert np.array_equal(eng.field.h, ref)

    def test_u0_always_accepts(self):
        eng, rng = small_engine(u=0.0)
        st = sweep(eng, rng)
        assert st.accepted == st.proposed
        assert st.sign == 1.0

    def test_on_boundary_callback(self):
        eng, rng = small_engine()
        calls = []

        def cb(c, g, sign):
            calls.append(c)
            assert set(g) == {1, -1}
            assert g[1].shape == (4, 4)
            assert sign in (-1.0, 1.0)

        sweep(eng, rng, on_boundary=cb)
        assert calls == list(range(eng.n_clusters))

    def test_start_sign_threaded_through(self):
        eng, rng = small_engine(u=0.0)
        st = sweep(eng, rng, start_sign=-1.0)
        assert st.sign == -1.0  # U=0: no ratio can flip it


class TestBackwardSweep:
    def test_visits_every_entry_once(self):
        eng, rng = small_engine()
        st = sweep(eng, rng, direction="backward")
        assert st.proposed == 12 * 4

    def test_greens_consistent_after_backward_sweep(self):
        eng, rng = small_engine(seed=4)
        sweep(eng, rng, direction="backward")
        for sigma in (1, -1):
            g = eng.boundary_greens(sigma, 0)
            expected = brute_greens(eng.factory, eng.field, sigma)
            assert relerr(g, expected) < 1e-8

    def test_direction_changes_the_path(self):
        f1, _ = small_engine(seed=5)[0].field, None
        eng_f, rng_f = small_engine(seed=5)
        eng_b, rng_b = small_engine(seed=5)
        sweep(eng_f, rng_f, direction="forward")
        sweep(eng_b, rng_b, direction="backward")
        assert not np.array_equal(eng_f.field.h, eng_b.field.h)

    def test_unknown_direction_rejected(self):
        eng, rng = small_engine()
        with pytest.raises(ValueError):
            sweep(eng, rng, direction="sideways")

    def test_half_filling_invariants_hold_backward(self):
        eng, rng = small_engine(u=6.0, beta=2.0)
        st = sweep(eng, rng, direction="backward")
        assert st.negative_ratios == 0 and st.sign == 1.0

    def test_alternating_preserves_greens_consistency(self):
        eng, rng = small_engine(seed=8, lx=4, ly=2)
        for d in ("forward", "backward", "forward", "backward"):
            sweep(eng, rng, direction=d)
        g = eng.boundary_greens(1, 0)
        expected = brute_greens(eng.factory, eng.field, 1)
        assert relerr(g, expected) < 1e-8

    def test_wrap_unwrap_is_inverse(self):
        """unwrap(wrap(G, l), l) must recover G — the identity the
        backward sweep's retreat step relies on."""
        eng, _ = small_engine(seed=11)
        for sigma in (1, -1):
            g0 = eng.boundary_greens(sigma, 0)
            g = g0.copy()
            for l in (0, 1, 2):
                g = eng.wrap(g, l, sigma)
            for l in (2, 1, 0):
                g = eng.unwrap(g, l, sigma)
            assert relerr(g, g0) < 1e-10

    def test_forward_backward_statistically_compatible(self):
        """Both directions sample the same distribution: from identical
        seeds, acceptance rates agree within Monte Carlo error and the
        half-filling sign stays +1 in both."""
        n_sweeps = 12
        stats = {}
        for direction in ("forward", "backward"):
            eng, rng = small_engine(seed=21, u=4.0, beta=1.5)
            agg = SweepStats()
            for _ in range(n_sweeps):
                st = sweep(eng, rng, direction=direction)
                agg.merge(st)
                assert st.sign == 1.0
            stats[direction] = agg
        f, b = stats["forward"], stats["backward"]
        assert f.proposed == b.proposed
        # binomial std of the mean rate ~ sqrt(p(1-p)/n) ~ 0.023 here;
        # 4 sigma keeps the test deterministic-seeded yet meaningful
        p = f.acceptance_rate
        tol = 4.0 * np.sqrt(p * (1.0 - p) / f.proposed)
        assert abs(f.acceptance_rate - b.acceptance_rate) < tol


class RiggedUpdater(DelayedUpdater):
    """DelayedUpdater whose effective diagonal forces a near-singular
    Metropolis denominator: d = 1 + a*(1 - diag) == D_TARGET for the
    alpha this diagonal is rigged against."""

    #: below SINGULAR_THRESHOLD but nonzero, so r != 0 and the proposal
    #: still *enters* the acceptance branch where the guard lives
    D_TARGET = 1e-20
    #: set by the test to the (uniform) spin-up alpha of the field
    rig_alpha = None

    def __init__(self, g, max_delay: int = 32, backend=None):
        super().__init__(g, max_delay=max_delay, backend=backend)
        self._diag[:] = 1.0 + (1.0 - self.D_TARGET) / self.rig_alpha


class ZeroRng:
    """Duck-typed Generator whose uniforms are all 0, so every proposal
    with |r| > 0 takes the acceptance branch."""

    def random(self, n):
        return np.zeros(int(n))


class TestSingularGuard:
    def make_forced_singular(self, monkeypatch, telemetry=None):
        model = HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.5, n_slices=12)
        field = HSField.ordered(model.n_slices, model.n_sites)
        eng = GreensFunctionEngine(
            BMatrixFactory(model), field, cluster_size=4, telemetry=telemetry
        )
        # all-ones field: alpha_up is the same for every site and slice,
        # so one rigged diagonal value forces d_up = D_TARGET everywhere
        # repro.dqmc re-exports the sweep *function* under the same name
        # as the module, so fetch the module object itself
        sweep_module = sys.modules["repro.dqmc.sweep"]
        RiggedUpdater.rig_alpha = float(np.exp(-2.0 * model.nu) - 1.0)
        monkeypatch.setattr(sweep_module, "DelayedUpdater", RiggedUpdater)
        return model, eng

    def test_forced_singular_rejects_instead_of_corrupting(self, monkeypatch):
        model, eng = self.make_forced_singular(monkeypatch)
        before = eng.field.h.copy()
        st = sweep(eng, ZeroRng())
        assert st.proposed == model.n_slices * model.n_sites
        assert st.singular_rejects == st.proposed
        assert st.accepted == 0
        assert st.sign == 1.0
        # nothing was flipped, so the chain state is untouched
        np.testing.assert_array_equal(eng.field.h, before)

    def test_guard_reports_to_telemetry(self, monkeypatch, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(TelemetryWriter(path), snapshot_every=0)
        model, eng = self.make_forced_singular(monkeypatch, telemetry=tel)
        st = sweep(eng, ZeroRng(), telemetry=tel)
        tel.close()
        total = model.n_slices * model.n_sites
        assert tel.registry.counter("sweep.singular_guard_hits") == total
        events = [e for e in read_events(path) if e["event"] == "singular_reject"]
        assert len(events) == model.n_slices  # one per slice that tripped
        assert sum(e["count"] for e in events) == st.singular_rejects == total

    def test_threshold_is_not_overly_aggressive(self):
        """Ordinary sweeps at a typical operating point never trip the
        guard — it only fires on genuinely degenerate denominators."""
        eng, rng = small_engine(u=4.0, beta=2.0)
        agg = SweepStats()
        for _ in range(5):
            agg.merge(sweep(eng, rng))
        assert agg.singular_rejects == 0
        assert agg.accepted > 0

    def test_threshold_value(self):
        # pinned: changing it alters which chains survive; see sweep.py
        assert SINGULAR_THRESHOLD == 1e-12


class TestSweepStats:
    def test_merge(self):
        a = SweepStats(
            proposed=10, accepted=5, negative_ratios=1, refreshes=2,
            singular_rejects=1,
        )
        b = SweepStats(
            proposed=4, accepted=1, negative_ratios=0, refreshes=1,
            singular_rejects=2,
        )
        a.merge(b)
        assert (a.proposed, a.accepted, a.negative_ratios, a.refreshes) == (
            14, 6, 1, 3,
        )
        assert a.singular_rejects == 3

    def test_acceptance_rate(self):
        assert SweepStats(proposed=8, accepted=2).acceptance_rate == 0.25
        assert SweepStats().acceptance_rate == 0.0


class TestHalfFillingInvariants:
    def test_sign_stays_positive(self):
        eng, rng = small_engine(u=6.0, beta=2.0)
        st = sweep(eng, rng)
        assert st.negative_ratios == 0
        assert st.sign == 1.0

    def test_per_config_density_is_one(self):
        """Particle-hole symmetry at mu = 0: n_up(i) + n_dn(i) = 1 per
        site for every configuration."""
        eng, rng = small_engine(u=4.0, beta=2.0, lx=4, ly=2)
        sweep(eng, rng)
        g_up = eng.boundary_greens(1, 0)
        g_dn = eng.boundary_greens(-1, 0)
        total = (1 - np.diag(g_up)) + (1 - np.diag(g_dn))
        np.testing.assert_allclose(total, 1.0, atol=1e-9)
