"""Unit tests for the momentum distribution."""

import numpy as np
import pytest

from repro import HubbardModel, SquareLattice, momentum_grid
from repro.hamiltonian import free_dispersion_2d, free_greens_function
from repro.measure import momentum_distribution, momentum_distribution_spin_mean


@pytest.fixture
def free_case():
    lat = SquareLattice(6, 6)
    beta = 4.0
    model = HubbardModel(lat, u=0.0, beta=beta)
    g = free_greens_function(model.kinetic_matrix(), beta)
    return lat, beta, g


class TestFreeFermions:
    def test_matches_fermi_function(self, free_case):
        """For U = 0, <n_k> must be exactly the Fermi function of the
        tight-binding dispersion — the sharpest validation available."""
        lat, beta, g = free_case
        nk = momentum_distribution(lat, g)
        k = momentum_grid(lat.lx, lat.ly)
        eps = free_dispersion_2d(k[:, 0], k[:, 1])
        expected = 1.0 / (1.0 + np.exp(beta * eps))
        np.testing.assert_allclose(nk, expected, atol=1e-10)

    def test_range_physical(self, free_case):
        lat, _, g = free_case
        nk = momentum_distribution(lat, g)
        assert np.all(nk > -1e-12) and np.all(nk < 1 + 1e-12)

    def test_sum_rule(self, free_case):
        """(1/N) sum_k <n_k> = density per spin."""
        lat, _, g = free_case
        nk = momentum_distribution(lat, g)
        density = np.mean(1.0 - np.diag(g))
        assert nk.mean() == pytest.approx(density, abs=1e-12)

    def test_ordering_across_fermi_surface(self, free_case):
        """<n_(0,0)> ~ 1 (deep inside FS), <n_(pi,pi)> ~ 0 (far outside)."""
        lat, _, g = free_case
        nk = momentum_distribution(lat, g)
        assert nk[lat.index(0, 0)] > 0.99
        assert nk[lat.index(3, 3)] < 0.01


class TestSpinMean:
    def test_mean_of_identical_spins(self, free_case):
        lat, _, g = free_case
        np.testing.assert_allclose(
            momentum_distribution_spin_mean(lat, g, g),
            momentum_distribution(lat, g),
            atol=1e-14,
        )

    def test_mean_is_average(self, free_case):
        lat, _, g = free_case
        g2 = np.eye(36)  # empty band
        mixed = momentum_distribution_spin_mean(lat, g, g2)
        np.testing.assert_allclose(
            mixed, 0.5 * momentum_distribution(lat, g), atol=1e-12
        )
