"""Sign-corrected ratio estimators and cross-chain R-hat diagnostics."""

import numpy as np
import pytest

from repro.measure import Accumulator, binned_statistics
from repro.stats import (
    StreamingAccumulator,
    propagate_ratio_error,
    rhat_from_estimates,
    sign_corrected_ratio,
    sign_corrected_results,
    split_rhat,
)


class TestJackknifeRatio:
    def test_constant_sign_reduces_to_binning(self):
        """At half filling (<s> = 1) the jackknife ratio must coincide
        with the plain binning analysis — same mean, same error."""
        rng = np.random.default_rng(0)
        num = 1.0 + 0.05 * rng.standard_normal(320)
        est = sign_corrected_ratio(num, np.ones(320), n_bins=16)
        ref = binned_statistics(num, n_bins=16)
        np.testing.assert_allclose(float(est.mean), float(ref.mean), atol=1e-12)
        np.testing.assert_allclose(
            float(est.error), float(ref.error), rtol=1e-10
        )

    def test_recovers_known_ratio(self):
        rng = np.random.default_rng(1)
        sign = rng.choice([1.0, -1.0], size=4000, p=[0.8, 0.2])  # <s> = 0.6
        true_obs = 0.7
        num = true_obs * sign + 0.02 * rng.standard_normal(4000)
        est = sign_corrected_ratio(num, sign)
        assert abs(float(est.mean) - true_obs) < 5 * float(est.error)
        assert float(est.error) < 0.05

    def test_array_numerator(self):
        rng = np.random.default_rng(2)
        sign = np.ones(160)
        num = rng.standard_normal((160, 3))
        est = sign_corrected_ratio(num, sign)
        ref = binned_statistics(num)
        assert np.shape(est.mean) == (3,)
        np.testing.assert_allclose(est.mean, ref.mean, atol=1e-12)

    def test_hard_sign_problem_refused(self):
        sign = np.tile([1.0, -1.0], 50)  # <s> = 0 exactly
        with pytest.raises(ValueError, match="sign"):
            sign_corrected_ratio(np.ones(100), sign)

    def test_length_mismatch_refused(self):
        with pytest.raises(ValueError, match="samples"):
            sign_corrected_ratio(np.ones(10), np.ones(11))

    def test_tiny_series_gets_inf_error(self):
        est = sign_corrected_ratio(np.ones(3), np.ones(3))
        assert np.isinf(float(est.error))
        assert float(est.mean) == 1.0


class TestPropagation:
    def test_exact_at_zero_sign_variance(self):
        num = binned_statistics(2.0 + np.random.default_rng(3).standard_normal(64))
        sgn = binned_statistics(np.ones(64))
        est = propagate_ratio_error(num, sgn)
        np.testing.assert_allclose(float(est.mean), float(num.mean))
        np.testing.assert_allclose(float(est.error), float(num.error))

    def test_sign_noise_inflates_error(self):
        rng = np.random.default_rng(4)
        num = binned_statistics(1.0 + 0.01 * rng.standard_normal(256))
        noisy_sign = binned_statistics(
            rng.choice([1.0, -1.0], size=256, p=[0.75, 0.25])
        )
        est = propagate_ratio_error(num, noisy_sign)
        assert float(est.error) > float(num.error)

    def test_hard_sign_problem_refused(self):
        num = binned_statistics(np.ones(32))
        zero_sign = binned_statistics(np.tile([1.0, -1.0], 16))
        with pytest.raises(ValueError, match="sign"):
            propagate_ratio_error(num, zero_sign)


class TestSignCorrectedResults:
    def fill(self, acc, n=256, seed=5):
        rng = np.random.default_rng(seed)
        for _ in range(n):
            s = 1.0
            acc.add("sign", s)
            acc.add("density", s * (1.0 + 0.01 * rng.standard_normal()))

    def test_posthoc_and_streaming_agree_at_constant_sign(self):
        post, stream = Accumulator(), StreamingAccumulator()
        self.fill(post)
        self.fill(stream)
        p = sign_corrected_results(post)
        s = sign_corrected_results(stream)
        assert set(p) == set(s) == {"sign", "density"}
        np.testing.assert_allclose(
            float(p["density"].mean), float(s["density"].mean), atol=1e-12
        )

    def test_without_sign_returns_raw(self):
        acc = Accumulator()
        acc.add("density", 1.0)
        acc.add("density", 2.0)
        out = sign_corrected_results(acc)
        assert set(out) == {"density"}
        assert float(out["density"].mean) == 1.5


class TestRhat:
    def test_honest_chains_near_one(self):
        rng = np.random.default_rng(6)
        chains = [rng.standard_normal(500) for _ in range(4)]
        r = split_rhat(chains)
        assert 0.95 < r < 1.05

    def test_disagreeing_chains_flagged(self):
        rng = np.random.default_rng(7)
        chains = [
            rng.standard_normal(500),
            5.0 + rng.standard_normal(500),
        ]
        assert split_rhat(chains) > 1.5

    def test_intra_chain_drift_flagged(self):
        t = np.linspace(0, 5, 600)
        chains = [t + 0.1 * np.random.default_rng(8).standard_normal(600)]
        assert split_rhat(chains) > 1.5

    def test_too_short_is_nan(self):
        assert np.isnan(split_rhat([np.arange(5.0)]))

    def test_estimate_variant(self):
        rng = np.random.default_rng(9)
        ests = [
            binned_statistics(rng.standard_normal(400)) for _ in range(4)
        ]
        assert 0.9 < rhat_from_estimates(ests) < 1.6
        shifted = ests[:2] + [binned_statistics(9.0 + rng.standard_normal(400))]
        assert rhat_from_estimates(shifted) > 2.0
        assert np.isnan(rhat_from_estimates(ests[:1]))
