"""Unit tests for the Green's function engine."""

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import GreensFunctionEngine
from repro.profiling import PhaseProfiler
from tests.helpers import brute_greens, relerr


class TestBoundaryGreens:
    def test_boundary_zero_matches_brute_force(self, engine4x4, factory4x4, field4x4):
        for sigma in (1, -1):
            g = engine4x4.boundary_greens(sigma, 0)
            expected = brute_greens(factory4x4, field4x4, sigma)
            assert relerr(g, expected) < 1e-9

    def test_boundary_rotation_matches_direct(self, factory4x4, field4x4):
        """Boundary c's G must equal the slice-level direct evaluation
        with rightmost slice c*k."""
        eng = GreensFunctionEngine(factory4x4, field4x4, cluster_size=5)
        k = eng.cluster_size
        for c in (1, 2, 3):
            g = eng.boundary_greens(1, c)
            # direct G with rightmost factor = slice c*k, i.e. G_{c*k - 1}
            direct = eng.greens_at_slice_direct(1, c * k - 1)
            assert relerr(g, direct) < 1e-9

    def test_methods_agree(self, factory4x4, field4x4):
        gs = {}
        for method in ("qrp", "prepivot"):
            eng = GreensFunctionEngine(
                factory4x4, field4x4, method=method, cluster_size=10
            )
            gs[method] = eng.boundary_greens(1, 0)
        assert relerr(gs["prepivot"], gs["qrp"]) < 1e-11

    def test_stats_updated(self, engine4x4):
        engine4x4.boundary_greens(1, 0)
        assert engine4x4.last_stats.n_factors == engine4x4.n_clusters


class TestSliceGreens:
    def test_greens_at_slice_consistency(self, engine4x4):
        for l in (0, 7, 13, 19):
            via_wraps = engine4x4.greens_at_slice(1, l)
            direct = engine4x4.greens_at_slice_direct(1, l)
            assert relerr(via_wraps, direct) < 1e-8, l

    def test_out_of_range_raises(self, engine4x4):
        with pytest.raises(IndexError):
            engine4x4.greens_at_slice_direct(1, 20)


class TestInvalidation:
    def test_field_change_changes_greens(self, engine4x4, field4x4):
        g_before = engine4x4.boundary_greens(1, 0)
        field4x4.flip(0, 0)
        engine4x4.invalidate_slice(0)
        g_after = engine4x4.boundary_greens(1, 0)
        assert relerr(g_after, g_before) > 1e-10

    def test_missing_invalidation_is_stale(self, engine4x4, field4x4):
        """Documents the invalidation contract: without it, the engine
        serves the old G."""
        g_before = engine4x4.boundary_greens(1, 0)
        field4x4.flip(0, 0)
        g_stale = engine4x4.boundary_greens(1, 0)
        assert relerr(g_stale, g_before) < 1e-14
        field4x4.flip(0, 0)  # restore


class TestGradingProfile:
    def test_descending_and_wide(self, engine4x4):
        d = engine4x4.grading_profile(1)
        assert np.all(d[1:] <= d[:-1] * (1 + 1e-9))  # sorted by contract
        assert d[0] / d[-1] > 1e3  # beta U = 8: already graded

    def test_spread_grows_with_beta_u(self, rng):
        from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice

        ratios = []
        for beta in (2.0, 8.0):
            model = HubbardModel(
                SquareLattice(2, 2), u=6.0, beta=beta, n_slices=int(beta * 8)
            )
            fac = BMatrixFactory(model)
            field = HSField.random(model.n_slices, 4, rng)
            eng = GreensFunctionEngine(fac, field, cluster_size=8)
            d = eng.grading_profile(1)
            ratios.append(d[0] / d[-1])
        assert ratios[1] > 100 * ratios[0]

    def test_free_fermion_profile_is_kinetic_spectrum(self, rng):
        """U = 0 with the (exact-SVD) jacobi stratifier: |D| must be the
        singular values exp(-beta w) of exp(-beta K), whatever the field."""
        from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice

        model = HubbardModel(SquareLattice(3, 3), u=0.0, beta=2.0, n_slices=16)
        fac = BMatrixFactory(model)
        field = HSField.random(16, 9, rng)
        eng = GreensFunctionEngine(fac, field, cluster_size=8, method="jacobi")
        d = eng.grading_profile(1)
        w = np.linalg.eigvalsh(model.kinetic_matrix())
        np.testing.assert_allclose(
            d, np.sort(np.exp(-2.0 * w))[::-1], rtol=1e-8
        )

    def test_qr_profile_tracks_svd_profile(self, engine4x4, factory4x4, field4x4):
        """diag(R) magnitudes approximate the singular spectrum within
        modest factors — the property that lets the profile diagnose
        grading without an SVD."""
        d_qr = engine4x4.grading_profile(1)
        d_svd = GreensFunctionEngine(
            factory4x4, field4x4, cluster_size=10, method="jacobi"
        ).grading_profile(1)
        ratio = d_qr / d_svd
        assert ratio.max() < 50 and ratio.min() > 1 / 50


class TestConfigurationSign:
    def test_positive_at_half_filling(self, engine4x4):
        assert engine4x4.configuration_sign() == 1.0

    def test_matches_brute_force_determinants(self, rng):
        model = HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.0, n_slices=10, mu=-0.5)
        fac = BMatrixFactory(model)
        field = HSField.random(10, 4, rng)
        eng = GreensFunctionEngine(fac, field, cluster_size=5)
        sign = eng.configuration_sign()
        brute = 1.0
        for s in (1, -1):
            m = np.eye(4) + fac.full_product(field, s)
            brute *= np.sign(np.linalg.det(m))
        assert sign == brute


class TestProfilerIntegration:
    def test_phases_recorded(self, factory4x4, field4x4):
        prof = PhaseProfiler()
        eng = GreensFunctionEngine(
            factory4x4, field4x4, cluster_size=10, profiler=prof
        )
        g = eng.boundary_greens(1, 0)
        eng.wrap(g, 0, 1)
        assert prof.seconds.get("stratification", 0) > 0
        assert prof.seconds.get("clustering", 0) > 0
        assert prof.seconds.get("wrapping", 0) > 0
