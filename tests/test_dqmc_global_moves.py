"""Unit + integration tests for global worldline flips."""

import itertools

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import GreensFunctionEngine
from repro.dqmc import sweep
from repro.dqmc.global_moves import GlobalMoveStats, global_site_flips
from tests.helpers import brute_greens, relerr


def make_engine(u=4.0, beta=1.5, n_slices=12, seed=0, lx=2, ly=1):
    model = HubbardModel(SquareLattice(lx, ly), u=u, beta=beta, n_slices=n_slices)
    rng = np.random.default_rng(seed)
    field = HSField.random(n_slices, model.n_sites, rng)
    fac = BMatrixFactory(model)
    return GreensFunctionEngine(fac, field, cluster_size=4), rng


class TestMechanics:
    def test_counters(self):
        eng, rng = make_engine()
        stats, sign = global_site_flips(eng, rng, n_proposals=5)
        assert stats.proposed == 5
        assert 0 <= stats.accepted <= 5
        assert sign in (-1.0, 1.0)

    def test_rejected_move_restores_field(self):
        """Force rejection (zero-probability random draw impossible, so
        instead: propose and verify either the flip stuck or the field
        is exactly restored)."""
        eng, rng = make_engine(seed=3)
        before = eng.field.h.copy()
        stats, _ = global_site_flips(eng, rng, sites=np.array([1]))
        after = eng.field.h
        if stats.accepted:
            assert np.array_equal(after[:, 1], -before[:, 1])
        else:
            assert np.array_equal(after, before)
        # the untouched site is never modified
        assert np.array_equal(after[:, 0], before[:, 0])

    def test_engine_consistent_after_moves(self):
        eng, rng = make_engine(seed=4, lx=2, ly=2)
        global_site_flips(eng, rng, n_proposals=4)
        for sigma in (1, -1):
            g = eng.boundary_greens(sigma, 0)
            assert relerr(g, brute_greens(eng.factory, eng.field, sigma)) < 1e-9

    def test_half_filling_sign_stays_positive(self):
        eng, rng = make_engine(u=6.0, lx=2, ly=2)
        _, sign = global_site_flips(eng, rng, n_proposals=6)
        assert sign == 1.0

    def test_stats_merge(self):
        a = GlobalMoveStats(proposed=4, accepted=1)
        b = GlobalMoveStats(proposed=2, accepted=2)
        a.merge(b)
        assert (a.proposed, a.accepted) == (6, 3)
        assert a.acceptance_rate == 0.5
        assert GlobalMoveStats().acceptance_rate == 0.0


class TestDetailedBalance:
    def test_combined_chain_matches_enumeration(self):
        """Local sweeps + global flips must still sample the exact
        distribution (the decisive test of the acceptance rule)."""
        from tests.enumeration_reference import enumerate_dqmc

        model = HubbardModel(SquareLattice(2, 1), u=4.0, beta=2.0, n_slices=4)
        reference = enumerate_dqmc(model)

        rng = np.random.default_rng(77)
        field = HSField.random(4, 2, rng)
        fac = BMatrixFactory(model)
        eng = GreensFunctionEngine(fac, field, cluster_size=4)

        from repro.measure import MeasurementCollector

        collector = MeasurementCollector(model.lattice, with_arrays=False)
        sign = eng.configuration_sign()
        for s in range(2500):
            st = sweep(eng, rng, max_delay=2, start_sign=sign)
            sign = st.sign
            _, sign = global_site_flips(eng, rng, n_proposals=1,
                                        start_sign=sign)
            if s >= 150:
                g_up = eng.boundary_greens(1, 0)
                g_dn = eng.boundary_greens(-1, 0)
                collector.measure(g_up, g_dn, sign)
        res = collector.results()
        est = res["double_occupancy"]
        assert abs(est.scalar - reference.double_occupancy) < 5 * est.error
        assert res["density"].scalar == pytest.approx(
            reference.density, abs=1e-9
        )
