"""Unit tests for Algorithms 2 and 3 (stratified chain evaluation)."""

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import (
    METHODS,
    StratificationStats,
    stratified_decomposition,
    stratified_inverse,
)
from repro.linalg import naive_inverse
from tests.helpers import brute_greens, brute_product, dense_chain


class TestDecomposition:
    def test_reconstructs_benign_chain(self, factory4x4, field4x4):
        chain = dense_chain(factory4x4, field4x4, 1)
        expected = brute_product(factory4x4, field4x4, 1)
        for method in ("qrp", "prepivot"):
            dec = stratified_decomposition(chain, method=method)
            got = dec.dense()
            assert np.linalg.norm(got - expected) / np.linalg.norm(expected) < 1e-10

    def test_single_factor_chain(self, factory4x4, field4x4):
        b = factory4x4.b_matrix(field4x4, 0, 1)
        dec = stratified_decomposition([b], method="prepivot")
        np.testing.assert_allclose(dec.dense(), b, atol=1e-11)

    def test_diagonal_is_descending(self, factory4x4, field4x4):
        """The progressive graded structure: both pivoting policies must
        deliver a descending |D| (this is the property pre-pivoting
        exploits, so it is asserted for the pre-pivoted variant too)."""
        chain = dense_chain(factory4x4, field4x4, 1)
        for method in ("qrp", "prepivot"):
            dec = stratified_decomposition(chain, method=method)
            assert dec.is_descending(rtol=1e-9), method

    def test_empty_chain_raises(self):
        with pytest.raises(ValueError):
            stratified_decomposition([], method="qrp")

    def test_unknown_method_raises(self, factory4x4, field4x4):
        with pytest.raises(ValueError):
            stratified_decomposition(
                dense_chain(factory4x4, field4x4, 1), method="magic"
            )

    def test_mismatched_sizes_raise(self):
        with pytest.raises(ValueError):
            stratified_decomposition([np.eye(4), np.eye(5)])
        with pytest.raises(ValueError):
            stratified_decomposition([np.ones((3, 4))])

    def test_singular_factor_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            stratified_decomposition([np.zeros((4, 4))])

    def test_stats_populated(self, factory4x4, field4x4):
        chain = dense_chain(factory4x4, field4x4, 1)
        stats = StratificationStats()
        stratified_decomposition(chain, method="prepivot", stats=stats)
        assert stats.n_factors == len(chain)
        # first factor fully pivoted (n sync points) + 1 per later step
        assert stats.sync_points == 16 + (len(chain) - 1)
        assert stats.grading_ratio > 1.0

    def test_sync_point_accounting_by_method(self, factory4x4, field4x4):
        chain = dense_chain(factory4x4, field4x4, 1)
        counts = {}
        for method in METHODS:
            stats = StratificationStats()
            stratified_decomposition(chain, method=method, stats=stats)
            counts[method] = stats.sync_points
        # the paper's communication hierarchy
        assert counts["qrp"] > counts["prepivot"] > counts["nopivot"]

    def test_accepts_generator_input(self, factory4x4, field4x4):
        gen = (
            factory4x4.b_matrix(field4x4, l, 1)
            for l in range(field4x4.n_slices)
        )
        dec = stratified_decomposition(gen, method="prepivot")
        expected = brute_product(factory4x4, field4x4, 1)
        assert np.linalg.norm(dec.dense() - expected) / np.linalg.norm(expected) < 1e-10


class TestInverse:
    def test_matches_naive_on_benign_chain(self, factory4x4, field4x4):
        expected = brute_greens(factory4x4, field4x4, -1)
        chain = dense_chain(factory4x4, field4x4, -1)
        for method in ("qrp", "prepivot"):
            g = stratified_inverse(chain, method=method)
            assert np.linalg.norm(g - expected) / np.linalg.norm(expected) < 1e-9

    def test_prepivot_agrees_with_qrp_at_strong_coupling(self, rng):
        """The paper's Fig 2 claim: relative difference ~1e-12 even at
        large U and beta, where the chain's grading is extreme."""
        model = HubbardModel(SquareLattice(4, 4), u=8.0, beta=8.0, n_slices=80)
        fac = BMatrixFactory(model)
        field = HSField.random(80, 16, rng)
        chain = dense_chain(fac, field, 1)
        g2 = stratified_inverse(chain, method="qrp")
        g3 = stratified_inverse(chain, method="prepivot")
        rel = np.linalg.norm(g2 - g3) / np.linalg.norm(g2)
        assert rel < 1e-10

    def test_nopivot_still_works_at_weak_coupling(self, factory4x4, field4x4):
        expected = brute_greens(factory4x4, field4x4, 1)
        g = stratified_inverse(
            dense_chain(factory4x4, field4x4, 1), method="nopivot"
        )
        assert np.linalg.norm(g - expected) / np.linalg.norm(expected) < 1e-8

    def test_stable_where_naive_overflows(self, rng):
        """At beta*U large the raw product overflows double precision;
        the stratified inverse must stay finite and well-scaled."""
        model = HubbardModel(SquareLattice(2, 2), u=8.0, beta=20.0, n_slices=200)
        fac = BMatrixFactory(model)
        field = HSField.ordered(200, 4)  # ferromagnetic field: worst grading
        chain = dense_chain(fac, field, 1)
        g = stratified_inverse(chain, method="prepivot")
        assert np.all(np.isfinite(g))
        # G is a contraction-like object: eigenvalue magnitudes <= ~1.
        assert np.max(np.abs(g)) < 10.0

    def test_idempotent_chain(self):
        """Chain of identities: G = I/2 exactly."""
        chain = [np.eye(6)] * 10
        g = stratified_inverse(chain, method="prepivot")
        np.testing.assert_allclose(g, 0.5 * np.eye(6), atol=1e-13)


class TestSvdMethods:
    def test_svd_matches_qrp_on_random_fields(self, factory4x4, field4x4):
        chain = dense_chain(factory4x4, field4x4, 1)
        g_svd = stratified_inverse(chain, method="svd")
        g_qrp = stratified_inverse(chain, method="qrp")
        assert np.linalg.norm(g_svd - g_qrp) / np.linalg.norm(g_qrp) < 1e-9

    def test_jacobi_matches_qrp_on_random_fields(self, factory4x4, field4x4):
        chain = dense_chain(factory4x4, field4x4, 1)
        g_jac = stratified_inverse(chain, method="jacobi")
        g_qrp = stratified_inverse(chain, method="qrp")
        assert np.linalg.norm(g_jac - g_qrp) / np.linalg.norm(g_qrp) < 1e-9

    def test_svd_diagonal_descending_nonnegative(self, factory4x4, field4x4):
        chain = dense_chain(factory4x4, field4x4, 1)
        dec = stratified_decomposition(chain, method="svd")
        assert np.all(dec.d >= 0)
        assert dec.is_descending()

    def test_jacobi_t_factor_is_orthogonal(self, factory4x4, field4x4):
        """SVD-based stratifiers accumulate T as a product of orthogonal
        matrices — it must stay orthogonal."""
        chain = dense_chain(factory4x4, field4x4, 1)
        dec = stratified_decomposition(chain, method="jacobi")
        np.testing.assert_allclose(
            dec.t @ dec.t.T, np.eye(16), atol=1e-10
        )

    def test_lapack_svd_fails_where_qr_does_not(self):
        """The documented absolute-accuracy failure of gesdd-based
        stratification on an adversarial (ordered-field) chain — the
        historical reason for pivoted-QR stratification. Pinned here so
        the method docstrings stay honest."""
        model = HubbardModel(SquareLattice(2, 2), u=8.0, beta=10.0, n_slices=80)
        fac = BMatrixFactory(model)
        field = HSField.ordered(80, 4)
        chain = dense_chain(fac, field, 1)
        ref = stratified_inverse(chain, method="qrp")
        g_svd = stratified_inverse(chain, method="svd")
        assert np.linalg.norm(g_svd - ref) / np.linalg.norm(ref) > 1e-3
