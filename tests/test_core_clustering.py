"""Unit tests for matrix clustering."""

import numpy as np
import pytest

from repro.core import build_clusters, cluster_product, cluster_slices
from tests.helpers import brute_product, relerr


class TestClusterSlices:
    def test_partition(self):
        ranges = cluster_slices(20, 5)
        assert len(ranges) == 4
        flat = [l for r in ranges for l in r]
        assert flat == list(range(20))

    def test_cluster_size_one(self):
        assert len(cluster_slices(6, 1)) == 6

    def test_full_chain_as_one_cluster(self):
        assert cluster_slices(8, 8) == [range(0, 8)]

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            cluster_slices(20, 6)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            cluster_slices(10, 0)


class TestClusterProduct:
    def test_matches_dense_product(self, factory4x4, field4x4):
        slices = range(4, 9)
        expected = np.eye(16)
        for l in slices:
            expected = factory4x4.b_matrix(field4x4, l, 1) @ expected
        got = cluster_product(factory4x4, field4x4, 1, slices)
        assert relerr(got, expected) < 1e-13

    def test_single_slice_cluster(self, factory4x4, field4x4):
        got = cluster_product(factory4x4, field4x4, -1, range(7, 8))
        expected = factory4x4.b_matrix(field4x4, 7, -1)
        assert relerr(got, expected) < 1e-14


class TestBuildClusters:
    def test_product_of_clusters_is_full_chain(self, factory4x4, field4x4):
        """Clustering must not change the represented product."""
        clusters = build_clusters(factory4x4, field4x4, 1, cluster_size=5)
        assert len(clusters) == 4
        total = np.eye(16)
        for c in clusters:
            total = c @ total
        expected = brute_product(factory4x4, field4x4, 1)
        assert relerr(total, expected) < 1e-12

    def test_spin_dependence(self, factory4x4, field4x4):
        up = build_clusters(factory4x4, field4x4, 1, cluster_size=10)
        dn = build_clusters(factory4x4, field4x4, -1, cluster_size=10)
        assert relerr(up[0], dn[0]) > 1e-3  # genuinely different at U > 0
