"""RunController: error-targeted stopping, equilibration, bit-exact resume."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import HubbardModel, Simulation, SquareLattice
from repro.dqmc import load_checkpoint, save_checkpoint
from repro.measure import Accumulator
from repro.stats import RunController, StreamingAccumulator


def fake_sim(acc):
    """The controller only touches .collector.accumulator/.telemetry."""
    return SimpleNamespace(
        collector=SimpleNamespace(accumulator=acc), telemetry=None
    )


def fill(acc, n, noise=0.001, drift=0.0, seed=0):
    rng = np.random.default_rng(seed)
    for i in range(n):
        acc.add("sign", 1.0)
        acc.add(
            "density",
            1.0 + drift * np.exp(-i / 10.0) + noise * rng.standard_normal(),
        )


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="target_error"):
            RunController(target_error=0.0)
        with pytest.raises(ValueError, match="check_every"):
            RunController(check_every=0)
        with pytest.raises(ValueError, match="min_samples"):
            RunController(min_samples=4)


class TestCadence:
    def test_no_evaluation_before_min_samples(self):
        ctl = RunController(
            target_error=0.1, check_every=8, min_samples=16, equilibrate=False
        )
        acc = Accumulator()
        fill(acc, 8)
        assert ctl.check(fake_sim(acc)) is None
        assert ctl.checks == 0

    def test_evaluates_only_on_cadence_points(self):
        ctl = RunController(
            target_error=1e-12, check_every=8, min_samples=8, equilibrate=False
        )
        acc = Accumulator()
        sim = fake_sim(acc)
        fill(acc, 9)
        assert ctl.check(sim) is None  # 9 % 8 != 0
        fill(acc, 7, seed=1)
        assert ctl.check(sim) is not None  # n = 16


class TestStopping:
    def test_stops_when_target_met(self):
        ctl = RunController(
            target_error=0.1, check_every=8, min_samples=32, equilibrate=False
        )
        acc = Accumulator()
        fill(acc, 64, noise=1e-4)
        decision = ctl.check(fake_sim(acc))
        assert decision.stop and decision.reason == "target"
        assert ctl.stopped
        assert decision.relative_error <= 0.1
        assert "target reached" in decision.describe()
        assert ctl.summary()["target_met"] is True

    def test_keeps_going_when_noisy(self):
        ctl = RunController(
            target_error=1e-9, check_every=8, min_samples=32, equilibrate=False
        )
        acc = Accumulator()
        fill(acc, 64, noise=0.5)
        decision = ctl.check(fake_sim(acc))
        assert not decision.stop and decision.reason == "continue"

    def test_missing_observable_never_stops(self):
        ctl = RunController(
            target_observable="nonexistent",
            target_error=0.5,
            check_every=8,
            min_samples=8,
            equilibrate=False,
        )
        acc = Accumulator()
        fill(acc, 16)
        sim = fake_sim(acc)
        # zero samples of the target -> gated out entirely
        assert ctl.check(sim) is None


class TestEquilibration:
    def test_posthoc_prefix_discarded(self):
        ctl = RunController(
            target_error=1e-9, check_every=64, min_samples=64
        )
        acc = Accumulator()
        fill(acc, 512, noise=0.05, drift=3.0)
        decision = ctl.check(fake_sim(acc))
        assert ctl.equilibrated
        assert ctl.discarded > 0
        assert acc.n_samples("density") == 512 - ctl.discarded
        # sign series cut identically, keeping the cadence aligned
        assert acc.n_samples("sign") == acc.n_samples("density")
        assert decision.reason == "continue"

    def test_streaming_reset_discards_everything(self):
        ctl = RunController(
            target_error=1e-9, check_every=64, min_samples=64
        )
        acc = StreamingAccumulator()
        sim = fake_sim(acc)
        ctl.bind(sim)  # installs tracking for sign + target
        fill(acc, 512, noise=0.05, drift=3.0)
        ctl.check(sim)
        assert ctl.equilibrated
        assert ctl.discarded == 512
        assert acc.n_samples("density") == 0

    def test_drifting_chain_stays_unequilibrated(self):
        ctl = RunController(target_error=0.1, check_every=64, min_samples=64)
        acc = Accumulator()
        rng = np.random.default_rng(3)
        for i in range(128):
            acc.add("sign", 1.0)
            acc.add("density", 0.05 * i + 0.01 * rng.standard_normal())
        decision = ctl.check(fake_sim(acc))
        assert decision.reason == "equilibrating"
        assert not decision.stop and not ctl.equilibrated


class TestStateDict:
    def test_round_trip(self):
        ctl = RunController(target_error=0.1, equilibrate=False)
        ctl.checks, ctl.discarded, ctl.stopped = 3, 40, True
        clone = RunController(target_error=0.1)
        clone.restore_state(ctl.state_dict())
        assert clone.checks == 3
        assert clone.discarded == 40
        assert clone.stopped and clone.equilibrated


def make_sim(seed=3, streaming=False):
    model = HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.0, n_slices=8)
    return Simulation(model, seed=seed, cluster_size=4, streaming=streaming)


def make_controller():
    # Half filling: density is pinned at 1 by particle-hole symmetry, so
    # a modest target is reached quickly — ideal for an early-stop test.
    return RunController(
        target_observable="density",
        target_error=0.05,
        check_every=8,
        min_samples=16,
        equilibrate=False,
    )


class TestAdaptiveRuns:
    @pytest.mark.parametrize("streaming", [False, True])
    def test_stops_before_budget(self, streaming):
        sim = make_sim(streaming=streaming)
        sim.attach_controller(make_controller())
        sim.warmup(2)
        _, done, decision = sim.measure_until(400)
        assert done < 400
        assert decision.stop and sim.controller.stopped
        result = sim.result(n_warmup=2, n_measurement=done)
        assert result.control["target_met"] is True
        assert result.corrected is not None

    def test_measure_until_requires_controller(self):
        sim = make_sim()
        with pytest.raises(RuntimeError, match="controller"):
            sim.measure_until(10)

    def test_stopped_run_measures_nothing_more(self):
        sim = make_sim()
        sim.attach_controller(make_controller())
        sim.warmup(2)
        _, done, _ = sim.measure_until(400)
        _, again, decision = sim.measure_until(400)
        assert again == 0 and decision.stop

    @pytest.mark.parametrize("streaming", [False, True])
    def test_resume_is_bit_exact(self, streaming, tmp_path):
        """Checkpoint mid-flight; the resumed run must stop at the same
        sweep with identical estimates as the uninterrupted one."""
        path = tmp_path / "ckpt.npz"

        ref = make_sim(streaming=streaming)
        ref.attach_controller(make_controller())
        ref.warmup(3)
        _, ref_done, _ = ref.measure_until(200)
        ref_obs = ref.collector.results()

        a = make_sim(streaming=streaming)
        a.attach_controller(make_controller())
        a.warmup(3)
        a.measure_until(10)  # interrupt before the controller can stop
        save_checkpoint(path, a)

        b = make_sim(streaming=streaming)
        b.attach_controller(make_controller())  # attach BEFORE load
        load_checkpoint(path, b)
        assert b.measured_sweeps == 10
        _, more, _ = b.measure_until(200 - b.measured_sweeps)
        assert b.measured_sweeps + 0 == 10 + more
        assert 10 + more == ref_done
        got_obs = b.collector.results()
        for name in ref_obs:
            np.testing.assert_array_equal(
                np.asarray(got_obs[name].mean), np.asarray(ref_obs[name].mean)
            )
            np.testing.assert_array_equal(
                np.asarray(got_obs[name].error),
                np.asarray(ref_obs[name].error),
            )
