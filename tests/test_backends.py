"""The execution-backend layer: protocol, registry, and bit-identity.

The tentpole contract: one Green's-function pipeline over numpy /
threaded / simulated-GPU execution, with the *same bits* out of each.
The equivalence class is enforced here on a seeded 4x4 beta=2 run —
Green's functions, configuration sign, and observables bit-identical
across backends — plus 0-ULP checks of every batched op against its
per-matrix loop. ``cupy`` (real GPU BLAS, not bitwise-reproducible) is
excluded from the identity class and only smoke-tested when installed.
"""

import numpy as np
import pytest

from repro import HubbardModel, Simulation, SquareLattice
from repro.backends import (
    BackendError,
    BackendUnavailableError,
    BaseBackend,
    NumpyBackend,
    SimulatedGPUBackend,
    ThreadedBackend,
    available_backends,
    cupy_available,
    get_backend,
    known_backends,
    register_backend,
    resolve_backend,
    serial_backend,
    validate_backend_method,
)
from repro.dqmc.config import parse_config
from repro.hamiltonian import BMatrixFactory, HSField

#: The backends whose outputs must be bit-for-bit identical.
IDENTITY_BACKENDS = ("numpy", "threaded", "gpu-sim")


def model_4x4(beta=2.0, n_slices=16):
    return HubbardModel(SquareLattice(4, 4), u=4.0, beta=beta, n_slices=n_slices)


def bound_backend(name):
    factory = BMatrixFactory(model_4x4())
    return get_backend(name).bind(factory), factory


# ---------------------------------------------------------------------------
# registry + options
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_known_backends(self):
        assert set(known_backends()) >= {"numpy", "threaded", "gpu-sim", "cupy"}

    def test_available_excludes_cupy_when_missing(self):
        avail = available_backends()
        assert {"numpy", "threaded", "gpu-sim"} <= set(avail)
        if not cupy_available():
            assert "cupy" not in avail

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(BackendError, match="numpy"):
            get_backend("cuda")

    def test_resolve_passthrough_and_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        b = NumpyBackend()
        assert resolve_backend(b) is b
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend("threaded").name == "threaded"

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threaded")
        assert resolve_backend(None).name == "threaded"

    def test_custom_backend_registration(self):
        class MyBackend(NumpyBackend):
            name = "my-test-backend"

        register_backend("my-test-backend", MyBackend)
        assert get_backend("my-test-backend").name == "my-test-backend"

    def test_serial_backend_is_fresh(self):
        assert serial_backend() is not serial_backend()

    def test_cupy_unavailable_raises(self):
        if cupy_available():
            pytest.skip("cupy present")
        with pytest.raises(BackendUnavailableError):
            get_backend("cupy")


class TestLoudOptionRejection:
    """Satellite 1: no backend knob is ever silently dropped."""

    @pytest.mark.parametrize("name", IDENTITY_BACKENDS)
    def test_unknown_options_raise(self, name):
        with pytest.raises(BackendError, match="threaded_norms"):
            get_backend(name, threaded_norms=True)

    def test_simulation_rejects_gpu_plus_threaded_norms(self):
        """The old hybrid path silently ignored threaded_norms; now the
        combination is a loud error."""
        with pytest.raises(ValueError, match="threaded_norms"):
            Simulation(
                model_4x4(), cluster_size=4, use_gpu=True, threaded_norms=True
            )

    def test_simulation_rejects_backend_plus_legacy_flag(self):
        with pytest.raises(ValueError, match="use_gpu"):
            Simulation(
                model_4x4(), cluster_size=4, backend="numpy", use_gpu=True
            )
        with pytest.raises(ValueError, match="threaded_norms"):
            Simulation(
                model_4x4(), cluster_size=4, backend="numpy",
                threaded_norms=True,
            )

    def test_legacy_flags_deprecate_to_backends(self):
        with pytest.warns(DeprecationWarning, match="gpu-sim"):
            sim = Simulation(model_4x4(), cluster_size=4, use_gpu=True)
        assert sim.engine.backend.name == "gpu-sim"
        with pytest.warns(DeprecationWarning, match="threaded"):
            sim = Simulation(model_4x4(), cluster_size=4, threaded_norms=True)
        assert sim.engine.backend.name == "threaded"


class TestMethodValidation:
    """Satellite 2: method/backend combos validated before anything runs."""

    def test_valid_combo_passes(self):
        validate_backend_method("numpy", "prepivot")
        validate_backend_method("gpu-sim", "qrp")

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            validate_backend_method("numpy", "cholesky")

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError):
            validate_backend_method("cuda", "prepivot")

    def test_config_parse_time_validation(self):
        good = "l = 8\nnorth = 4\nbackend = threaded\n"
        assert parse_config(good).backend == "threaded"
        with pytest.raises(ValueError, match="backend"):
            parse_config("l = 8\nnorth = 4\nbackend = cuda\n")

    def test_config_auto_backend_defers(self, monkeypatch):
        cfg = parse_config("l = 8\nnorth = 4\n")
        assert cfg.backend == "auto"
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert cfg.simulation().engine.backend.name == "numpy"
        # "auto" is env-aware: the CI backend-matrix leg rides on this.
        monkeypatch.setenv("REPRO_BACKEND", "gpu-sim")
        assert cfg.simulation().engine.backend.name == "gpu-sim"

    def test_config_backend_override(self):
        cfg = parse_config("l = 8\nnorth = 4\nbackend = numpy\n")
        sim = cfg.simulation(backend="threaded")
        assert sim.engine.backend.name == "threaded"


# ---------------------------------------------------------------------------
# bit-identity of the single ops
# ---------------------------------------------------------------------------


def _rng_ops(seed=3):
    rng = np.random.default_rng(seed)
    n = 16
    g = rng.standard_normal((n, n))
    v = np.exp(rng.standard_normal(n))
    return g, v


class TestSingleOpIdentity:
    @pytest.mark.parametrize("name", IDENTITY_BACKENDS)
    def test_wrap_unwrap_identity_across_backends(self, name):
        ref, factory = bound_backend("numpy")
        other = get_backend(name).bind(factory)
        g, v = _rng_ops()
        assert np.array_equal(other.wrap(g, v), ref.wrap(g, v))
        assert np.array_equal(other.unwrap(g, v), ref.unwrap(g, v))

    @pytest.mark.parametrize("name", IDENTITY_BACKENDS)
    def test_cluster_product_across_backends(self, name):
        ref, factory = bound_backend("numpy")
        other = get_backend(name).bind(factory)
        rng = np.random.default_rng(5)
        vs = [np.exp(rng.standard_normal(16)) for _ in range(4)]
        assert np.array_equal(other.cluster_product(vs), ref.cluster_product(vs))

    def test_unwrap_inverts_wrap_to_rounding(self):
        b, _ = bound_backend("numpy")
        g, v = _rng_ops()
        np.testing.assert_allclose(b.unwrap(b.wrap(g, v), v), g, rtol=1e-10)

    @pytest.mark.parametrize("name", IDENTITY_BACKENDS)
    def test_scalings_bit_identical(self, name):
        b = get_backend(name)
        ref = NumpyBackend()
        g, v = _rng_ops()
        assert np.array_equal(b.scale_rows(g, v), ref.scale_rows(g, v))
        assert np.array_equal(b.scale_columns(g, v), ref.scale_columns(g, v))
        assert np.array_equal(
            b.scale_two_sided(g, v), ref.scale_two_sided(g, v)
        )

    @pytest.mark.parametrize("name", IDENTITY_BACKENDS)
    def test_prepivot_permutation_identical(self, name):
        """4x4 lattice (n=16) is below the threaded grain, so even the
        reassociating norm reduction is single-chunk → bit-identical."""
        b = get_backend(name)
        g, _ = _rng_ops()
        assert np.array_equal(
            b.prepivot_permutation(g), NumpyBackend().prepivot_permutation(g)
        )


# ---------------------------------------------------------------------------
# batched ops: 0 ULP vs the per-matrix loop
# ---------------------------------------------------------------------------


class TestBatchedOpsZeroULP:
    @pytest.mark.parametrize("name", IDENTITY_BACKENDS)
    def test_wrap_batched_matches_loop(self, name):
        b, factory = bound_backend(name)
        rng = np.random.default_rng(7)
        gs = rng.standard_normal((2, 16, 16))
        vs = np.exp(rng.standard_normal((2, 16)))
        batched = b.wrap_batched(gs.copy(), vs)
        for i in range(2):
            single = b.wrap(gs[i], vs[i])
            assert np.array_equal(batched[i], single), f"sector {i} differs"

    @pytest.mark.parametrize("name", IDENTITY_BACKENDS)
    def test_unwrap_batched_matches_loop(self, name):
        b, factory = bound_backend(name)
        rng = np.random.default_rng(8)
        gs = rng.standard_normal((2, 16, 16))
        vs = np.exp(rng.standard_normal((2, 16)))
        batched = b.unwrap_batched(gs.copy(), vs)
        for i in range(2):
            assert np.array_equal(batched[i], b.unwrap(gs[i], vs[i]))

    @pytest.mark.parametrize("name", IDENTITY_BACKENDS)
    def test_cluster_product_batched_matches_loop(self, name):
        b, factory = bound_backend(name)
        rng = np.random.default_rng(9)
        v_stack = np.exp(rng.standard_normal((2, 4, 16)))
        batched = b.cluster_product_batched(v_stack)
        for i in range(2):
            assert np.array_equal(
                batched[i], b.cluster_product(list(v_stack[i]))
            )

    def test_batched_unwrap_round_trips_batched_wrap(self):
        b, _ = bound_backend("numpy")
        rng = np.random.default_rng(10)
        gs = rng.standard_normal((2, 16, 16))
        vs = np.exp(rng.standard_normal((2, 16)))
        np.testing.assert_allclose(
            b.unwrap_batched(b.wrap_batched(gs, vs), vs), gs, rtol=1e-10
        )


# ---------------------------------------------------------------------------
# the headline contract: one seeded run, identical bits out of every backend
# ---------------------------------------------------------------------------


def run_backend(name, seed=42):
    sim = Simulation(
        model_4x4(), seed=seed, cluster_size=4, backend=name
    )
    res = sim.run(warmup_sweeps=2, measurement_sweeps=4)
    g_up = sim.engine.greens_at_slice(1, 3)
    g_dn = sim.engine.greens_at_slice(-1, 3)
    return {
        "h": sim.field.h.copy(),
        "g_up": g_up,
        "g_dn": g_dn,
        "sign": sim.engine.configuration_sign(),
        "density": res.observables["density"].mean,
        "double_occ": res.observables["double_occupancy"].mean,
        "kinetic": res.observables["kinetic_energy"].mean,
    }


class TestEndToEndBitIdentity:
    """Seeded 4x4 beta=2 run: every backend in the identity class must
    produce the same Markov chain, Green's functions, sign, and
    observables down to the last bit."""

    @pytest.fixture(scope="class")
    def reference(self):
        return run_backend("numpy")

    @pytest.mark.parametrize("name", ("threaded", "gpu-sim"))
    def test_identical_run(self, name, reference):
        got = run_backend(name)
        np.testing.assert_array_equal(got["h"], reference["h"])
        assert np.array_equal(got["g_up"], reference["g_up"])
        assert np.array_equal(got["g_dn"], reference["g_dn"])
        assert got["sign"] == reference["sign"]
        assert got["density"] == reference["density"]
        assert got["double_occ"] == reference["double_occ"]
        assert got["kinetic"] == reference["kinetic"]

    def test_gpu_sim_device_clock_advances(self):
        sim = Simulation(
            model_4x4(), seed=1, cluster_size=4, backend="gpu-sim"
        )
        sim.warmup(1)
        assert sim.engine.device.elapsed > 0.0
        assert sim.engine.device.kernel_launches > 0


# ---------------------------------------------------------------------------
# engine integration + telemetry
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_backend_stats_have_dispatch_counts(self):
        sim = Simulation(model_4x4(), seed=2, cluster_size=4, backend="numpy")
        sim.warmup(1)
        stats = sim.engine.backend.stats()
        assert stats.get("backend.active.numpy") == 1.0
        assert stats.get("backend.dispatch.wrap_batched", 0.0) > 0
        assert stats.get("backend.dispatch.gemm", 0.0) > 0

    def test_batched_dual_spin_prefetch(self):
        sim = Simulation(model_4x4(), seed=2, cluster_size=4, backend="numpy")
        sim.warmup(1)
        cache = sim.engine.cache
        assert cache.batched_builds > 0
        # every miss pair was served by one batched build
        assert cache.stats()["cluster_cache.batched_builds"] == float(
            cache.batched_builds
        )

    def test_device_property_raises_on_cpu_backend(self):
        sim = Simulation(model_4x4(), seed=0, cluster_size=4, backend="numpy")
        with pytest.raises(AttributeError, match="no device"):
            sim.engine.device

    def test_engine_rejects_backend_plus_threaded_norms(self):
        from repro.core import GreensFunctionEngine

        factory = BMatrixFactory(model_4x4())
        field = HSField.ordered(16, 16)
        with pytest.raises(ValueError, match="not both"):
            GreensFunctionEngine(
                factory, field, cluster_size=4,
                backend="numpy", threaded_norms=True,
            )


# ---------------------------------------------------------------------------
# cupy (only meaningful where a real GPU stack is installed)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not cupy_available(), reason="cupy not installed")
class TestCupySmoke:
    def test_wrap_close_to_numpy(self):
        ref, factory = bound_backend("numpy")
        gpu = get_backend("cupy").bind(factory)
        g, v = _rng_ops()
        np.testing.assert_allclose(gpu.wrap(g, v), ref.wrap(g, v), rtol=1e-12)
