"""Equilibration detection: MSER-5 truncation + Geweke cross-check."""

import numpy as np
import pytest

from repro.stats import detect_equilibration, geweke_z, mser_cut


def drifting_series(n=1000, burn=120, seed=0):
    """Exponential transient decaying into stationary noise."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 3.0 * np.exp(-t / (burn / 3.0)) + 0.3 * rng.standard_normal(n)


class TestMserCut:
    def test_stationary_series_keeps_almost_everything(self):
        x = np.random.default_rng(1).standard_normal(1000)
        assert mser_cut(x) <= 100

    def test_transient_is_cut(self):
        cut = mser_cut(drifting_series())
        # The transient is ~120 samples; MSER should land near it and
        # never throw away the stationary bulk.
        assert 20 <= cut <= 350

    def test_cut_is_batch_multiple(self):
        assert mser_cut(drifting_series(), batch=5) % 5 == 0

    def test_short_series_returns_zero(self):
        assert mser_cut(np.arange(10.0)) == 0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="scalar"):
            mser_cut(np.zeros((10, 2)))
        with pytest.raises(ValueError, match="batch"):
            mser_cut(np.zeros(100), batch=0)


class TestGeweke:
    def test_stationary_z_is_small(self):
        x = np.random.default_rng(2).standard_normal(2000)
        assert abs(geweke_z(x)) < 3.0

    def test_drift_inflates_z(self):
        t = np.arange(2000)
        x = 0.002 * t + 0.1 * np.random.default_rng(3).standard_normal(2000)
        assert abs(geweke_z(x)) > 3.0

    def test_short_series_is_nan(self):
        assert np.isnan(geweke_z(np.arange(12.0)))

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            geweke_z(np.zeros(100), first=0.6, last=0.6)
        with pytest.raises(ValueError):
            geweke_z(np.zeros((4, 4)))


class TestDetectEquilibration:
    def test_converges_on_stationary_tail(self):
        eq = detect_equilibration(drifting_series(n=2000, burn=100, seed=4))
        assert eq.converged
        assert eq.n_cut <= 1000
        assert np.isfinite(eq.z_score)
        assert "converged" in eq.describe()

    def test_pure_drift_does_not_converge(self):
        # A series that never settles: the cut hits the guard / the
        # z-check fails; either way the verdict is "not converged".
        t = np.arange(400, dtype=np.float64)
        eq = detect_equilibration(0.05 * t)
        assert not eq.converged
        assert "NOT converged" in eq.describe()

    def test_too_short_to_judge(self):
        eq = detect_equilibration(np.random.default_rng(5).standard_normal(6))
        assert not eq.converged  # NaN z-score is never "converged"

    def test_result_counts_samples(self):
        x = drifting_series(n=500, seed=6)
        eq = detect_equilibration(x)
        assert eq.n_samples == 500
        assert eq.batch == 5
