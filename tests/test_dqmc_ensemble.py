"""Unit tests for ensemble (multi-chain) sampling."""

import numpy as np
import pytest

from repro import HubbardModel, SquareLattice
from repro.dqmc import run_ensemble


def tiny_model():
    return HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.0, n_slices=8)


class TestEnsemble:
    def test_merges_all_chains(self):
        res = run_ensemble(
            tiny_model(), n_chains=3, warmup_sweeps=2,
            measurement_sweeps=4, cluster_size=4,
        )
        assert res.n_chains == 3
        assert len(res.per_chain) == 3
        assert res.observables["sign"].n_samples == 12  # 3 chains x 4

    def test_single_chain_matches_simulation(self):
        """Chain c's stream is SeedSequence(base_seed).spawn(...)[c] —
        reproducible directly with a Simulation seeded the same way."""
        from repro import Simulation

        res = run_ensemble(
            tiny_model(), n_chains=1, warmup_sweeps=2,
            measurement_sweeps=5, base_seed=9, cluster_size=4,
        )
        sim = Simulation(
            tiny_model(),
            seed=np.random.SeedSequence(9).spawn(1)[0],
            cluster_size=4,
        )
        direct = sim.run(2, 5)
        assert float(res.observables["density"].mean) == pytest.approx(
            direct.observables["density"].scalar
        )

    def test_seeds_are_spawned_not_offset(self):
        """base_seed + 1 must NOT reproduce chain 1 of base_seed (the
        old `base_seed + index` scheme had no independence guarantee)."""
        two = run_ensemble(
            tiny_model(), n_chains=2, warmup_sweeps=2,
            measurement_sweeps=4, base_seed=0, cluster_size=4,
        )
        offset = run_ensemble(
            tiny_model(), n_chains=1, warmup_sweeps=2,
            measurement_sweeps=4, base_seed=1, cluster_size=4,
        )
        assert float(two.per_chain[1]["double_occupancy"].mean) != float(
            offset.per_chain[0]["double_occupancy"].mean
        )

    def test_threaded_equals_serial(self):
        """Thread scheduling must not change any chain's Markov chain."""
        kwargs = dict(
            n_chains=3, warmup_sweeps=2, measurement_sweeps=4,
            base_seed=4, cluster_size=4,
        )
        par = run_ensemble(tiny_model(), max_workers=3, **kwargs)
        ser = run_ensemble(tiny_model(), max_workers=1, **kwargs)
        np.testing.assert_allclose(
            np.asarray(par.observables["double_occupancy"].mean),
            np.asarray(ser.observables["double_occupancy"].mean),
        )

    def test_chains_are_independent(self):
        res = run_ensemble(
            tiny_model(), n_chains=3, warmup_sweeps=2,
            measurement_sweeps=6, cluster_size=4,
        )
        means = [float(r["double_occupancy"].mean) for r in res.per_chain]
        assert len(set(means)) == 3  # different seeds, different samples

    def test_error_shrinks_with_chains(self):
        """More chains -> smaller merged error (stochastically robust:
        compare 1 chain against 6 with generous slack)."""
        small = run_ensemble(
            tiny_model(), n_chains=1, warmup_sweeps=5,
            measurement_sweeps=24, cluster_size=4,
        )
        big = run_ensemble(
            tiny_model(), n_chains=6, warmup_sweeps=5,
            measurement_sweeps=24, cluster_size=4,
        )
        e1 = float(small.observables["double_occupancy"].error)
        e6 = float(big.observables["double_occupancy"].error)
        assert e6 < e1 * 1.2

    def test_chain_spread(self):
        res = run_ensemble(
            tiny_model(), n_chains=3, warmup_sweeps=3,
            measurement_sweeps=8, cluster_size=4,
        )
        spread = res.chain_spread("double_occupancy")
        assert np.isfinite(spread) and spread > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_ensemble(tiny_model(), n_chains=0)
        with pytest.raises(ValueError, match="executor"):
            run_ensemble(tiny_model(), n_chains=1, executor="mpi")

    def test_process_executor_matches_thread(self):
        """Satellite: process-isolated chains (campaign worker layer)
        are bit-identical to the default thread executor."""
        kwargs = dict(
            n_chains=2, warmup_sweeps=2, measurement_sweeps=3,
            base_seed=4, cluster_size=4,
        )
        thr = run_ensemble(tiny_model(), executor="thread", **kwargs)
        prc = run_ensemble(tiny_model(), executor="process", **kwargs)
        for name in ("double_occupancy", "density", "sign"):
            np.testing.assert_array_equal(
                np.asarray(thr.observables[name].mean),
                np.asarray(prc.observables[name].mean),
            )
        assert prc.sweep_stats.proposed == thr.sweep_stats.proposed

    def test_half_filling_invariants_hold_per_chain(self):
        res = run_ensemble(
            tiny_model(), n_chains=2, warmup_sweeps=2,
            measurement_sweeps=4, cluster_size=4,
        )
        for chain in res.per_chain:
            assert float(chain["density"].mean) == pytest.approx(1.0, abs=1e-9)
            assert float(chain["sign"].mean) == 1.0
