"""Unit tests for time-displaced Green's functions."""

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import (
    displaced_greens,
    displaced_greens_series,
    stable_sum_inverse,
    stratified_decomposition,
)
from repro.linalg import GradedDecomposition
from tests.helpers import relerr


def brute_displaced(factory, field, sigma, l):
    """Unstabilized B_l ... B_0 (I + B_{L-1} ... B_0)^{-1}."""
    n = factory.n
    full = factory.full_product(field, sigma)
    g0 = np.linalg.inv(np.eye(n) + full)
    left = np.eye(n)
    for ll in range(l + 1):
        left = factory.b_matrix(field, ll, sigma) @ left
    return left @ g0


class TestStableSumInverse:
    def test_identity_left_reduces_to_equal_time(self, factory4x4, field4x4):
        chain = [
            factory4x4.b_matrix(field4x4, l, 1)
            for l in range(field4x4.n_slices)
        ]
        a2 = stratified_decomposition(chain, method="prepivot")
        ident = GradedDecomposition(
            q=np.eye(16), d=np.ones(16), t=np.eye(16)
        )
        from repro.linalg import stable_inverse_from_graded

        got = stable_sum_inverse(ident, a2)
        expected = stable_inverse_from_graded(a2)
        assert relerr(got, expected) < 1e-10

    def test_size_mismatch_raises(self):
        a = GradedDecomposition(q=np.eye(3), d=np.ones(3), t=np.eye(3))
        b = GradedDecomposition(q=np.eye(4), d=np.ones(4), t=np.eye(4))
        with pytest.raises(ValueError):
            stable_sum_inverse(a, b)


class TestDisplacedGreens:
    @pytest.mark.parametrize("l", [-1, 0, 7, 19])
    def test_matches_brute_force_benign(self, factory4x4, field4x4, l):
        got = displaced_greens(factory4x4, field4x4, 1, l)
        expected = brute_displaced(factory4x4, field4x4, 1, l)
        assert relerr(got, expected) < 1e-9

    def test_out_of_range(self, factory4x4, field4x4):
        with pytest.raises(IndexError):
            displaced_greens(factory4x4, field4x4, 1, 20)
        with pytest.raises(IndexError):
            displaced_greens(factory4x4, field4x4, 1, -2)

    def test_stable_at_strong_coupling(self, rng):
        """Midpoint tau at beta*U where the naive left product overflows
        by hundreds of orders of magnitude: result finite, methods agree."""
        model = HubbardModel(SquareLattice(2, 2), u=8.0, beta=16.0, n_slices=128)
        fac = BMatrixFactory(model)
        field = HSField.random(128, 4, rng)
        g_qrp = displaced_greens(fac, field, 1, 63, method="qrp")
        g_pre = displaced_greens(fac, field, 1, 63, method="prepivot")
        assert np.all(np.isfinite(g_pre))
        assert relerr(g_pre, g_qrp) < 1e-10

    def test_u0_analytic(self, rng):
        """Free fermions: G(tau) = e^{-tau K'} (1 - f) in the eigenbasis."""
        model = HubbardModel(SquareLattice(4, 4), u=0.0, beta=4.0, n_slices=40)
        fac = BMatrixFactory(model)
        field = HSField.random(40, 16, rng)
        l = 9  # tau = 1.0
        got = displaced_greens(fac, field, 1, l)
        w, v = np.linalg.eigh(model.kinetic_matrix())
        tau = (l + 1) * model.dtau
        f = 1.0 / (1.0 + np.exp(model.beta * w))
        expected = (v * (np.exp(-tau * w) * (1.0 - f))) @ v.T
        assert relerr(got, expected) < 1e-10

    def test_antiperiodic_boundary(self, factory4x4, field4x4):
        """G(beta, 0) + G(0, 0) = I: fermionic antiperiodicity.

        tau = beta means the full left chain: A1 (I + A1)^{-1}; adding
        the equal-time (I + A1)^{-1} gives exactly I.
        """
        g_beta = displaced_greens(factory4x4, field4x4, 1, field4x4.n_slices - 1)
        g_0 = displaced_greens(factory4x4, field4x4, 1, -1)
        np.testing.assert_allclose(g_beta + g_0, np.eye(16), atol=1e-9)

    def test_series(self, factory4x4, field4x4):
        out = displaced_greens_series(
            factory4x4, field4x4, 1, slices=[0, 10]
        )
        assert len(out) == 2
        assert relerr(
            out[1], displaced_greens(factory4x4, field4x4, 1, 10)
        ) < 1e-12


class TestReverseDisplaced:
    def test_matches_brute_force(self, rng):
        from repro.core import displaced_greens_reverse

        model = HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.5, n_slices=12)
        fac = BMatrixFactory(model)
        field = HSField.random(12, 4, rng)
        full = fac.full_product(field, 1)
        g00 = np.linalg.inv(np.eye(4) + full)
        for l in (0, 5, 11):
            left = np.eye(4)
            for ll in range(l + 1):
                left = fac.b_matrix(field, ll, 1) @ left
            brute = -(np.eye(4) - g00) @ np.linalg.inv(left)
            got = displaced_greens_reverse(fac, field, 1, l)
            assert relerr(got, brute) < 1e-8, l

    def test_antiperiodicity(self, factory4x4, field4x4):
        """G(0, beta) = -G(0, 0) (fermionic boundary condition)."""
        from repro.core import displaced_greens_reverse

        g_rev = displaced_greens_reverse(
            factory4x4, field4x4, 1, field4x4.n_slices - 1
        )
        g00 = displaced_greens(factory4x4, field4x4, 1, -1)
        np.testing.assert_allclose(g_rev, -g00, atol=1e-9)

    def test_u0_analytic(self, rng):
        """Free fermions: G(0, tau) = -e^{tau K'} f in the eigenbasis."""
        from repro.core import displaced_greens_reverse

        model = HubbardModel(SquareLattice(4, 4), u=0.0, beta=4.0, n_slices=40)
        fac = BMatrixFactory(model)
        field = HSField.random(40, 16, rng)
        l = 9
        got = displaced_greens_reverse(fac, field, 1, l)
        w, v = np.linalg.eigh(model.kinetic_matrix())
        tau = (l + 1) * model.dtau
        f = 1.0 / (1.0 + np.exp(model.beta * w))
        expected = -(v * (np.exp(tau * w) * f)) @ v.T
        assert relerr(got, expected) < 1e-10


class TestFastSeries:
    def test_matches_per_tau_evaluation(self, factory4x4, field4x4):
        from repro.core import displaced_series_fast

        taus, greens = displaced_series_fast(
            factory4x4, field4x4, 1, cluster_size=5
        )
        assert len(taus) == 4
        for j, g in enumerate(greens):
            l = (j + 1) * 5 - 1
            ref = displaced_greens(factory4x4, field4x4, 1, l)
            assert relerr(g, ref) < 1e-10, j

    def test_tau_grid(self, factory4x4, field4x4):
        from repro.core import displaced_series_fast

        taus, _ = displaced_series_fast(factory4x4, field4x4, 1, 10)
        np.testing.assert_allclose(taus, [1.0, 2.0])

    def test_stable_at_strong_coupling(self, rng):
        from repro.core import displaced_series_fast

        model = HubbardModel(SquareLattice(2, 2), u=8.0, beta=12.0, n_slices=96)
        fac = BMatrixFactory(model)
        field = HSField.random(96, 4, rng)
        taus, greens = displaced_series_fast(fac, field, 1, cluster_size=8)
        for j, g in enumerate(greens):
            assert np.all(np.isfinite(g)), j
            # spot-check the midpoint against the two-chain evaluation
        mid = len(greens) // 2
        ref = displaced_greens(fac, field, 1, (mid + 1) * 8 - 1)
        assert relerr(greens[mid], ref) < 1e-8
