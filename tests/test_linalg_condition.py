"""Unit tests for conditioning diagnostics and k auto-tuning."""

import numpy as np
import pytest

from repro import HubbardModel, SquareLattice
from repro.linalg import (
    chain_conditioning_report,
    max_safe_cluster_size,
    slice_condition_bound,
)


class TestSliceBound:
    def test_is_actually_an_upper_bound(self):
        """cond(B) computed exactly must respect the bound, for several
        parameter points and fields."""
        from repro import BMatrixFactory, HSField

        rng = np.random.default_rng(0)
        for u, beta in [(2.0, 2.0), (8.0, 4.0)]:
            model = HubbardModel(SquareLattice(4, 4), u=u, beta=beta, n_slices=16)
            fac = BMatrixFactory(model)
            field = HSField.random(16, 16, rng)
            b = fac.b_matrix(field, 0, 1)
            cond = np.linalg.cond(b)
            w = np.linalg.eigvalsh(model.kinetic_matrix())
            bound = slice_condition_bound(model.nu, model.dtau, w[-1] - w[0])
            assert cond <= bound * (1 + 1e-10), (u, beta)

    def test_free_limit(self):
        # nu = 0: the bound is just the kinetic spread
        assert slice_condition_bound(0.0, 0.1, 8.0) == pytest.approx(
            np.exp(0.8)
        )


class TestMaxSafeClusterSize:
    def test_decreases_with_difficulty(self):
        easy = max_safe_cluster_size(0.2, 0.1, 8.0)
        hard = max_safe_cluster_size(1.0, 0.1, 8.0)
        assert easy > hard >= 1

    def test_free_fermions_unbounded(self):
        assert max_safe_cluster_size(0.0, 0.0001, 0.0) >= 10**6

    def test_never_below_one(self):
        assert max_safe_cluster_size(10.0, 1.0, 8.0) == 1

    def test_safety_margin_monotone(self):
        lo = max_safe_cluster_size(0.5, 0.125, 8.0, safety_digits=2)
        hi = max_safe_cluster_size(0.5, 0.125, 8.0, safety_digits=8)
        assert lo >= hi


class TestReport:
    def test_paper_parameters_allow_k10(self):
        """At the paper's production point (U = 2, dtau = 0.2) the bound
        must admit the k = 10 the paper uses."""
        model = HubbardModel(
            SquareLattice(8, 8), u=2.0, beta=8.0, n_slices=40
        )
        rep = chain_conditioning_report(model)
        assert rep.suggested_cluster_size == 10

    def test_suggestion_divides_l(self):
        model = HubbardModel(
            SquareLattice(4, 4), u=8.0, beta=8.0, n_slices=48
        )
        rep = chain_conditioning_report(model)
        assert model.n_slices % rep.suggested_cluster_size == 0

    def test_suggested_k_is_numerically_safe(self):
        """Running the engine with the suggested k must agree with the
        per-slice (k = 1) evaluation to the promised headroom."""
        from repro import BMatrixFactory, HSField
        from repro.core import GreensFunctionEngine

        rng = np.random.default_rng(1)
        model = HubbardModel(SquareLattice(4, 4), u=8.0, beta=6.0, n_slices=48)
        rep = chain_conditioning_report(model)
        fac = BMatrixFactory(model)
        field = HSField.random(48, 16, rng)
        g_k = GreensFunctionEngine(
            fac, field, cluster_size=rep.suggested_cluster_size
        ).boundary_greens(1, 0)
        g_1 = GreensFunctionEngine(fac, field, cluster_size=1).boundary_greens(1, 0)
        err = np.linalg.norm(g_k - g_1) / np.linalg.norm(g_1)
        assert err < 10.0 ** (-2)  # comfortably inside the 4-digit margin

    def test_describe(self):
        model = HubbardModel(SquareLattice(2, 2), u=4.0, beta=2.0, n_slices=20)
        text = chain_conditioning_report(model).describe()
        assert "cond(B)" in text and "k <=" in text
