"""Unit tests for arbitrary-geometry lattices."""

import numpy as np
import pytest

from repro import HubbardModel, Simulation, SquareLattice
from repro.lattice import GeneralLattice


class TestConstruction:
    def test_from_bonds_mixed_forms(self):
        lat = GeneralLattice.from_bonds(3, [(0, 1), (1, 2, 0.5)])
        assert lat.adjacency[0, 1] == 1.0
        assert lat.adjacency[1, 2] == 0.5

    def test_duplicate_bonds_accumulate(self):
        lat = GeneralLattice.from_bonds(2, [(0, 1), (0, 1)])
        assert lat.adjacency[0, 1] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneralLattice(0, ())
        with pytest.raises(ValueError):
            GeneralLattice.from_bonds(2, [(0, 2)])
        with pytest.raises(ValueError):
            GeneralLattice.from_bonds(2, [(0, 0)])
        with pytest.raises(ValueError):
            GeneralLattice.from_bonds(2, [(0, 1, 0.0)])

    def test_from_file(self, tmp_path):
        p = tmp_path / "geo.txt"
        p.write_text("# triangle\n3\n0 1\n1 2 0.5\n2 0\n")
        lat = GeneralLattice.from_file(p)
        assert lat.n_sites == 3 and len(lat.bonds) == 3
        assert lat.adjacency[1, 2] == 0.5

    def test_from_file_errors(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("")
        with pytest.raises(ValueError):
            GeneralLattice.from_file(p)
        p.write_text("2\n0 1 2 3\n")
        with pytest.raises(ValueError):
            GeneralLattice.from_file(p)


class TestGraphStructure:
    def test_chain_matches_square_row(self):
        """A periodic chain built generally must equal SquareLattice(n, 1)."""
        for n in (2, 5, 6):
            gen = GeneralLattice.chain(n)
            sq = SquareLattice(n, 1)
            np.testing.assert_array_equal(gen.adjacency, sq.adjacency)

    def test_coordination_and_neighbors(self):
        lat = GeneralLattice.triangle()
        np.testing.assert_array_equal(lat.coordination, [2, 2, 2])
        assert lat.neighbors(0) == (1, 2)

    def test_connectivity(self):
        assert GeneralLattice.triangle().is_connected
        split = GeneralLattice.from_bonds(4, [(0, 1), (2, 3)])
        assert not split.is_connected

    def test_bipartiteness(self):
        assert GeneralLattice.chain(4).is_bipartite
        assert not GeneralLattice.chain(5).is_bipartite  # odd ring
        assert not GeneralLattice.triangle().is_bipartite
        assert GeneralLattice.from_bonds(4, [(0, 1), (2, 3)]).is_bipartite


class TestSimulationIntegration:
    def test_bipartite_general_geometry_runs_sign_free(self):
        """A hand-built 4-site ring via GeneralLattice must reproduce the
        SquareLattice(2,2)-like physics: density 1, sign +1."""
        lat = GeneralLattice.chain(4)
        model = HubbardModel(lat, u=4.0, beta=1.5, n_slices=12)
        res = Simulation(model, seed=2, cluster_size=4).run(5, 15)
        assert res.observables["density"].scalar == pytest.approx(1.0, abs=1e-9)
        assert res.mean_sign == pytest.approx(1.0)

    def test_matches_square_lattice_chain(self):
        """GeneralLattice.chain(4) and SquareLattice(4, 1) with the same
        seed must walk the identical Markov chain."""
        results = []
        for lat in (GeneralLattice.chain(4), SquareLattice(4, 1)):
            model = HubbardModel(lat, u=4.0, beta=1.5, n_slices=12)
            sim = Simulation(model, seed=3, cluster_size=4, measure_arrays=False)
            res = sim.run(3, 10)
            results.append(res.observables["kinetic_energy"].scalar)
        assert results[0] == pytest.approx(results[1], abs=1e-12)

    def test_frustrated_triangle_develops_sign_problem(self):
        """The minimal frustrated cluster at mu != 0: negative ratios
        must appear (the sign problem the bipartite guard warns about)."""
        lat = GeneralLattice.triangle()
        assert not lat.is_bipartite
        model = HubbardModel(lat, u=6.0, beta=3.0, n_slices=24, mu=-0.8)
        sim = Simulation(model, seed=11, cluster_size=8, measure_arrays=False)
        sim.run(10, 40)
        assert sim.total_stats.negative_ratios > 0
        assert abs(sim._sign) == 1.0  # still a valid +-1 sign

    def test_no_momentum_observables_for_general_geometry(self):
        lat = GeneralLattice.triangle()
        model = HubbardModel(lat, u=2.0, beta=1.0, n_slices=8)
        res = Simulation(model, seed=0, cluster_size=4).run(1, 3)
        assert "momentum_distribution" not in res.observables
        assert "density" in res.observables
