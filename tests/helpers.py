"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

import numpy as np


def dense_chain(factory, field, sigma):
    """All slice B matrices, rightmost-first."""
    return [factory.b_matrix(field, l, sigma) for l in range(field.n_slices)]


def brute_product(factory, field, sigma):
    """Unstabilized B_L ... B_1 for benign chains."""
    out = np.eye(factory.n)
    for b in dense_chain(factory, field, sigma):
        out = b @ out
    return out


def brute_greens(factory, field, sigma):
    """Unstabilized (I + B_L ... B_1)^{-1}; benign chains only."""
    return np.linalg.inv(np.eye(factory.n) + brute_product(factory, field, sigma))


def relerr(a, b):
    return float(np.linalg.norm(a - b) / np.linalg.norm(b))
