"""Property tests: streaming log-binning vs the retained-series analysis.

The contract under test (docs/analysis.md): a streaming accumulator fed
the same sample stream as the post-hoc accumulator must report the same
mean exactly and, when the sample count is n_bins * 2^k, the same binned
error to floating-point roundoff — while holding only O(log n) state.
"""

import numpy as np
import pytest

from repro.measure import Accumulator, binned_statistics
from repro.measure.estimators import integrated_autocorrelation_time
from repro.stats import (
    LogBinningAccumulator,
    StreamingAccumulator,
    StreamingError,
)


def ar1(n, rho=0.7, seed=0, shape=()):
    """A correlated series — binning must actually do something."""
    rng = np.random.default_rng(seed)
    x = np.empty((n,) + shape)
    x[0] = rng.standard_normal(shape)
    for i in range(1, n):
        x[i] = rho * x[i - 1] + rng.standard_normal(shape)
    return x


class TestLogBinning:
    def test_mean_matches_every_sample(self):
        data = ar1(777, seed=1)
        acc = LogBinningAccumulator()
        for v in data:
            acc.add(v)
        assert acc.n_samples == 777
        np.testing.assert_allclose(acc.mean, data.mean(), rtol=0, atol=1e-13)

    def test_error_matches_posthoc_at_aligned_count(self):
        # n = 16 * 2^5: level-5 bin boundaries coincide with the
        # post-hoc 16-bin analysis exactly.
        data = ar1(16 * 32, seed=2)
        acc = LogBinningAccumulator()
        for v in data:
            acc.add(v)
        est = acc.estimate(n_bins=16)
        ref = binned_statistics(data, n_bins=16)
        assert est.n_bins == ref.n_bins == 16
        np.testing.assert_allclose(float(est.mean), float(ref.mean), atol=1e-13)
        np.testing.assert_allclose(
            float(est.error), float(ref.error), rtol=1e-10
        )

    def test_array_observables(self):
        data = ar1(16 * 8, seed=3, shape=(3, 2))
        acc = LogBinningAccumulator(shape=(3, 2))
        for v in data:
            acc.add(v)
        est = acc.estimate(n_bins=16)
        ref = binned_statistics(data, n_bins=16)
        np.testing.assert_allclose(est.mean, ref.mean, atol=1e-13)
        np.testing.assert_allclose(est.error, ref.error, rtol=1e-10)

    def test_state_is_logarithmic(self):
        acc = LogBinningAccumulator()
        for v in ar1(4096, seed=4):
            acc.add(v)
        # 4096 samples, but only ~log2(4096) levels of O(1) state each.
        assert acc.n_levels <= int(np.log2(4096)) + 1

    def test_shape_mismatch_rejected(self):
        acc = LogBinningAccumulator(shape=(2,))
        with pytest.raises(ValueError, match="shape"):
            acc.add(3.0)

    def test_merge_matches_concatenation_mean(self):
        a_data, b_data = ar1(300, seed=5), ar1(200, seed=6)
        a = LogBinningAccumulator()
        b = LogBinningAccumulator()
        for v in a_data:
            a.add(v)
        for v in b_data:
            b.add(v)
        a.merge(b)
        both = np.concatenate([a_data, b_data])
        assert a.n_samples == 500
        np.testing.assert_allclose(a.mean, both.mean(), atol=1e-12)

    def test_state_round_trip_bit_exact(self):
        acc = LogBinningAccumulator()
        for v in ar1(333, seed=7):  # odd count: pending half-bins exist
            acc.add(v)
        clone = LogBinningAccumulator.from_state(
            acc.state_meta(), acc.state_arrays()
        )
        # Continue both from the restored state: identical floats.
        for v in ar1(100, seed=8):
            acc.add(v)
            clone.add(v)
        np.testing.assert_array_equal(acc.mean, clone.mean)
        np.testing.assert_array_equal(
            acc.estimate().error, clone.estimate().error
        )


class TestStreamingAccumulator:
    def feed(self, acc, n=256, seed=9):
        num = ar1(n, seed=seed)
        for v in num:
            acc.add("density", 1.0 + 0.01 * v)
            acc.add("sign", 1.0)
            acc.add("nk", np.full((2, 2), v))
        return num

    def test_reduce_parity_with_posthoc(self):
        stream = StreamingAccumulator()
        post = Accumulator()
        self.feed(stream)
        num = self.feed(post)
        s = stream.reduce(n_bins=16)
        p = post.reduce(n_bins=16)
        assert set(s) == set(p)
        for name in p:
            np.testing.assert_allclose(
                np.asarray(s[name].mean), np.asarray(p[name].mean), atol=1e-12
            )
        assert num.shape[0] == 256

    def test_series_requires_tracking(self):
        acc = StreamingAccumulator(track=["density"])
        self.feed(acc)
        assert acc.series("density").shape == (256,)
        with pytest.raises(StreamingError, match="not retained"):
            acc.series("sign")
        with pytest.raises(KeyError):
            acc.series("never_recorded")

    def test_discard_prefix_is_loud(self):
        acc = StreamingAccumulator()
        self.feed(acc)
        with pytest.raises(StreamingError, match="reset"):
            acc.discard_prefix(10)

    def test_reset_keeps_registry(self):
        acc = StreamingAccumulator(track=["density"])
        self.feed(acc)
        dropped = acc.reset()
        assert dropped == 256
        assert set(acc.names()) == {"density", "sign", "nk"}
        assert acc.n_samples("density") == 0
        assert acc.tracked_names == ("density",)

    def test_extend_rejects_posthoc(self):
        acc = StreamingAccumulator()
        with pytest.raises(StreamingError):
            acc.extend(Accumulator())

    def test_state_round_trip(self):
        acc = StreamingAccumulator(track=["density"])
        self.feed(acc, n=123)
        clone = StreamingAccumulator()
        clone.restore_state(acc.state_meta(), acc.state_arrays())
        assert clone.tracked_names == acc.tracked_names
        np.testing.assert_array_equal(
            clone.series("density"), acc.series("density")
        )
        for name in acc.names():
            np.testing.assert_array_equal(
                np.asarray(clone.estimate(name).mean),
                np.asarray(acc.estimate(name).mean),
            )


class TestAutocorrelationFFT:
    """The FFT rewrite must agree with the textbook direct sum exactly."""

    @staticmethod
    def direct_tau(samples, window_factor=6.0):
        x = np.asarray(samples, dtype=np.float64)
        x = x - x.mean()
        n = x.size
        var = float(x @ x) / n
        if var == 0.0:
            return 0.5
        tau = 0.5
        for t in range(1, n // 2):
            rho = float(x[:-t] @ x[t:]) / ((n - t) * var)
            tau += rho
            if t >= window_factor * tau:
                break
        return max(tau, 0.5)

    @pytest.mark.parametrize("rho", [0.0, 0.5, 0.9])
    def test_matches_direct_sum(self, rho):
        data = ar1(600, rho=rho, seed=11)
        fft_tau = integrated_autocorrelation_time(data)
        ref_tau = self.direct_tau(data)
        np.testing.assert_allclose(fft_tau, ref_tau, rtol=1e-10)

    def test_iid_near_half(self):
        data = np.random.default_rng(12).standard_normal(4000)
        assert abs(integrated_autocorrelation_time(data) - 0.5) < 0.2

    def test_correlated_exceeds_iid(self):
        tau = integrated_autocorrelation_time(ar1(4000, rho=0.9, seed=13))
        # AR(1): tau_int = (1+rho)/(2(1-rho)) = 9.5 for rho = 0.9
        assert tau > 4.0

    def test_constant_series(self):
        assert integrated_autocorrelation_time(np.ones(64)) == 0.5

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            integrated_autocorrelation_time(np.zeros((8, 2)))
        with pytest.raises(ValueError):
            integrated_autocorrelation_time(np.zeros(3))
