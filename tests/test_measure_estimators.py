"""Unit tests for binning analysis and jackknife."""

import numpy as np
import pytest

from repro.measure import Accumulator, binned_statistics, jackknife


@pytest.fixture
def rng():
    return np.random.default_rng(21)


class TestBinnedStatistics:
    def test_mean_unbiased(self, rng):
        x = rng.normal(loc=3.0, size=4096)
        est = binned_statistics(x, n_bins=16)
        assert est.mean == pytest.approx(np.mean(x[: 16 * 256]), abs=1e-12)

    def test_error_scale_iid(self, rng):
        """For iid samples the binned error must be ~ sigma / sqrt(n)."""
        x = rng.normal(size=8192)
        est = binned_statistics(x, n_bins=32)
        expected = 1.0 / np.sqrt(8192)
        assert est.error == pytest.approx(expected, rel=0.5)

    def test_correlated_series_has_larger_error(self, rng):
        """Binning must expose autocorrelation: an AR(1) series' true
        error greatly exceeds the naive sqrt(var/n) estimate."""
        n = 8192
        x = np.empty(n)
        x[0] = 0.0
        eta = rng.normal(size=n)
        for i in range(1, n):
            x[i] = 0.95 * x[i - 1] + eta[i]
        naive = x.std(ddof=1) / np.sqrt(n)
        est = binned_statistics(x, n_bins=16)
        assert est.error > 3 * naive

    def test_array_valued(self, rng):
        x = rng.normal(size=(256, 5))
        est = binned_statistics(x, n_bins=8)
        assert est.mean.shape == (5,)
        assert est.error.shape == (5,)

    def test_few_samples_shrinks_bins(self):
        est = binned_statistics(np.arange(5.0), n_bins=16)
        assert est.n_bins == 2

    def test_single_sample(self):
        est = binned_statistics(np.array([2.5]))
        assert est.mean == 2.5 and est.error == np.inf

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            binned_statistics(np.array([]))

    def test_scalar_property(self, rng):
        est = binned_statistics(rng.normal(size=64))
        assert isinstance(est.scalar, float)
        est_arr = binned_statistics(rng.normal(size=(64, 2)))
        with pytest.raises(ValueError):
            est_arr.scalar


class TestJackknife:
    def test_linear_function_matches_binning(self, rng):
        x = rng.normal(loc=1.5, size=1024)
        jk = jackknife(x, lambda m: m, n_bins=16)
        direct = binned_statistics(x, n_bins=16)
        assert jk.mean == pytest.approx(float(direct.mean), rel=1e-10)
        assert jk.error == pytest.approx(float(direct.error), rel=0.2)

    def test_nonlinear_ratio(self, rng):
        """Jackknife a ratio <a>/<b>; must recover the true ratio."""
        a = rng.normal(loc=2.0, scale=0.1, size=2048)
        b = rng.normal(loc=4.0, scale=0.1, size=2048)
        samples = np.stack([a, b], axis=1)
        jk = jackknife(samples, lambda m: m[0] / m[1], n_bins=16)
        assert jk.mean == pytest.approx(0.5, abs=0.01)
        assert 0 < jk.error < 0.01

    def test_too_few_samples(self):
        jk = jackknife(np.array([1.0]), lambda m: m * 2)
        assert jk.mean == 2.0 and jk.error == np.inf


class TestAutocorrelationTime:
    def test_iid_is_half(self, rng):
        from repro.measure import integrated_autocorrelation_time

        tau = integrated_autocorrelation_time(rng.normal(size=16384))
        assert tau == pytest.approx(0.5, abs=0.15)

    @pytest.mark.parametrize("rho", [0.5, 0.9])
    def test_ar1_known_value(self, rng, rho):
        """AR(1): tau_int = (1/2)(1 + rho)/(1 - rho)."""
        from repro.measure import integrated_autocorrelation_time

        n = 60000
        x = np.empty(n)
        x[0] = 0.0
        eta = rng.normal(size=n)
        for i in range(1, n):
            x[i] = rho * x[i - 1] + eta[i]
        tau = integrated_autocorrelation_time(x)
        expected = 0.5 * (1 + rho) / (1 - rho)
        assert tau == pytest.approx(expected, rel=0.25)

    def test_constant_series(self):
        from repro.measure import integrated_autocorrelation_time

        assert integrated_autocorrelation_time(np.ones(100)) == 0.5

    def test_validation(self, rng):
        from repro.measure import integrated_autocorrelation_time

        with pytest.raises(ValueError):
            integrated_autocorrelation_time(np.ones((10, 2)))
        with pytest.raises(ValueError):
            integrated_autocorrelation_time(np.ones(3))

    def test_consistent_with_binning(self, rng):
        """err_binned^2 ~ (2 tau) * var / n: the two estimators must
        agree on the effective sample count within a factor ~2."""
        from repro.measure import integrated_autocorrelation_time

        n = 32768
        x = np.empty(n)
        x[0] = 0.0
        eta = rng.normal(size=n)
        for i in range(1, n):
            x[i] = 0.8 * x[i - 1] + eta[i]
        tau = integrated_autocorrelation_time(x)
        est = binned_statistics(x, n_bins=32)
        err_pred = np.sqrt(2 * tau * x.var(ddof=1) / n)
        assert float(est.error) == pytest.approx(err_pred, rel=0.5)


class TestAccumulator:
    def test_collect_and_reduce(self, rng):
        acc = Accumulator()
        for _ in range(32):
            acc.add("x", rng.normal())
            acc.add("v", rng.normal(size=3))
        out = acc.reduce(n_bins=8)
        assert out["x"].n_samples == 32
        assert out["v"].mean.shape == (3,)

    def test_series_ordering(self):
        acc = Accumulator()
        for i in range(5):
            acc.add("t", float(i))
        np.testing.assert_array_equal(acc.series("t"), np.arange(5.0))

    def test_missing_name_raises(self):
        with pytest.raises(KeyError):
            Accumulator().series("nope")

    def test_extend(self):
        a, b = Accumulator(), Accumulator()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.extend(b)
        np.testing.assert_array_equal(a.series("x"), [1.0, 2.0])
        assert a.n_samples("y") == 1
