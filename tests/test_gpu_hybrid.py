"""Unit tests for the hybrid CPU+GPU Green's engine."""

import numpy as np
import pytest

from repro.core import GreensFunctionEngine
from repro.dqmc import sweep
from repro.gpu import HybridGreensEngine
from tests.helpers import relerr


@pytest.fixture
def hybrid(factory4x4, field4x4):
    return HybridGreensEngine(factory4x4, field4x4, cluster_size=10)


class TestNumericalEquivalence:
    def test_boundary_greens_matches_cpu(self, hybrid, factory4x4, field4x4):
        cpu = GreensFunctionEngine(factory4x4, field4x4, cluster_size=10)
        for sigma in (1, -1):
            np.testing.assert_allclose(
                hybrid.boundary_greens(sigma, 0),
                cpu.boundary_greens(sigma, 0),
                atol=1e-12,
            )

    def test_wrap_matches_cpu(self, hybrid, factory4x4, field4x4):
        cpu = GreensFunctionEngine(factory4x4, field4x4, cluster_size=10)
        g = cpu.boundary_greens(1, 0)
        assert relerr(hybrid.wrap(g.copy(), 0, 1), cpu.wrap(g.copy(), 0, 1)) < 1e-12

    def test_full_sweep_identical_markov_chain(self, factory4x4, field4x4):
        """A sweep driven by the hybrid engine must walk the *same*
        Markov chain as the CPU engine — offload changes timing, never
        physics."""
        f_cpu = field4x4.copy()
        f_gpu = field4x4.copy()
        cpu_eng = GreensFunctionEngine(factory4x4, f_cpu, cluster_size=10)
        gpu_eng = HybridGreensEngine(factory4x4, f_gpu, cluster_size=10)
        st_cpu = sweep(cpu_eng, np.random.default_rng(3))
        st_gpu = sweep(gpu_eng, np.random.default_rng(3))
        assert st_cpu.accepted == st_gpu.accepted
        assert np.array_equal(f_cpu.h, f_gpu.h)


class TestTimingAccounts:
    def test_clocks_accumulate(self, hybrid):
        hybrid.boundary_greens(1, 0)
        g = hybrid.boundary_greens(-1, 0)
        hybrid.wrap(g, 0, -1)
        assert hybrid.gpu_seconds > 0
        assert hybrid.cpu_seconds > 0
        assert hybrid.hybrid_seconds() == pytest.approx(
            hybrid.gpu_seconds + hybrid.cpu_seconds
        )

    def test_cache_avoids_gpu_rebuilds(self, hybrid):
        hybrid.boundary_greens(1, 0)
        launches = hybrid.device.kernel_launches
        hybrid.boundary_greens(1, 0)  # all clusters cached
        assert hybrid.device.kernel_launches == launches

    def test_invalidation_triggers_gpu_rebuild(self, hybrid, field4x4):
        hybrid.boundary_greens(1, 0)
        launches = hybrid.device.kernel_launches
        field4x4.flip(0, 0)
        hybrid.invalidate_slice(0)
        hybrid.boundary_greens(1, 0)
        assert hybrid.device.kernel_launches > launches
