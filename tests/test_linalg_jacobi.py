"""Unit tests for the one-sided Jacobi SVD."""

import numpy as np
import pytest

from repro.linalg import jacobi_svd


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestBasics:
    @pytest.mark.parametrize("shape", [(8, 8), (15, 9), (20, 20)])
    def test_reconstruction_and_orthogonality(self, rng, shape):
        a = rng.normal(size=shape)
        u, s, vt = jacobi_svd(a)
        n = shape[1]
        np.testing.assert_allclose(u @ np.diag(s) @ vt, a, atol=1e-12)
        np.testing.assert_allclose(u.T @ u, np.eye(n), atol=1e-12)
        np.testing.assert_allclose(vt @ vt.T, np.eye(n), atol=1e-12)

    def test_matches_lapack_values(self, rng):
        a = rng.normal(size=(12, 12))
        _, s, _ = jacobi_svd(a)
        np.testing.assert_allclose(
            s, np.linalg.svd(a, compute_uv=False), rtol=1e-12
        )

    def test_descending_nonnegative(self, rng):
        _, s, _ = jacobi_svd(rng.normal(size=(10, 10)))
        assert np.all(s >= 0)
        assert np.all(np.diff(s) <= 1e-12 * s[0])

    def test_rejects_wide_matrix(self, rng):
        with pytest.raises(ValueError):
            jacobi_svd(rng.normal(size=(3, 5)))

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            jacobi_svd(np.ones(4))

    def test_rank_deficient(self, rng):
        a = rng.normal(size=(8, 3))
        a = np.hstack([a, a[:, :2]])  # rank 3, 5 columns
        u, s, vt = jacobi_svd(a)
        assert np.sum(s > 1e-12 * s[0]) == 3
        np.testing.assert_allclose(u @ np.diag(s) @ vt, a, atol=1e-12)

    def test_diagonal_input(self):
        d = np.array([5.0, 3.0, 1.0])
        u, s, vt = jacobi_svd(np.diag(d))
        np.testing.assert_allclose(s, d)


class TestRelativeAccuracy:
    """The property LAPACK's gesdd does NOT have — the reason this
    implementation exists (Drmac-Veselic, the paper's ref [30])."""

    @pytest.mark.parametrize("span", [40, 80, 120])
    def test_graded_columns_reconstruct_relatively(self, rng, span):
        n = 10
        w, _ = np.linalg.qr(rng.normal(size=(n, n)))
        w = w + 0.1 * rng.normal(size=(n, n))
        d = np.logspace(0, -span, n)
        a = w * d[None, :]
        u, s, vt = jacobi_svd(a)
        recon = u @ np.diag(s) @ vt
        colerr = np.linalg.norm(recon - a, axis=0) / np.linalg.norm(a, axis=0)
        assert colerr.max() < 1e-12

    def test_tiny_singular_values_relatively_accurate(self, rng):
        """For A = diag-scaled orthogonal, the exact singular values are
        the scalings; Jacobi must hit each to relative precision."""
        n = 8
        q, _ = np.linalg.qr(rng.normal(size=(n, n)))
        d = np.logspace(0, -100, n)
        a = q * d[None, :]
        _, s, _ = jacobi_svd(a)
        np.testing.assert_allclose(s, d, rtol=1e-12)

    def test_fixes_the_stratification_failure(self):
        """End-to-end: on the adversarial ordered-field chain where
        LAPACK-SVD stratification collapses, Jacobi stratification
        matches QRP."""
        from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
        from repro.core import stratified_inverse

        model = HubbardModel(
            SquareLattice(2, 2), u=8.0, beta=10.0, n_slices=80
        )
        fac = BMatrixFactory(model)
        field = HSField.ordered(80, 4)
        chain = [fac.b_matrix(field, l, 1) for l in range(80)]
        ref = stratified_inverse(chain, method="qrp")
        g_jac = stratified_inverse(chain, method="jacobi")
        g_svd = stratified_inverse(chain, method="svd")
        assert np.linalg.norm(g_jac - ref) / np.linalg.norm(ref) < 1e-10
        # and the LAPACK-SVD failure is real (pin it so the docs stay true)
        assert np.linalg.norm(g_svd - ref) / np.linalg.norm(ref) > 1e-3
