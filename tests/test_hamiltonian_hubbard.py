"""Unit tests for the Hubbard model definition and HS coupling."""

import math

import numpy as np
import pytest

from repro import HubbardModel, MultilayerLattice, SquareLattice, hs_coupling


class TestHsCoupling:
    def test_defining_identity(self):
        """cosh(nu) must equal exp(U dtau / 2) — the discrete HS identity."""
        for u, dtau in [(2.0, 0.125), (4.0, 0.1), (8.0, 0.05)]:
            nu = hs_coupling(u, dtau)
            assert math.cosh(nu) == pytest.approx(math.exp(u * dtau / 2))

    def test_free_limit(self):
        assert hs_coupling(0.0, 0.1) == 0.0

    def test_rejects_attractive_u(self):
        with pytest.raises(ValueError):
            hs_coupling(-1.0, 0.1)

    def test_rejects_bad_dtau(self):
        with pytest.raises(ValueError):
            hs_coupling(2.0, 0.0)

    def test_monotone_in_u(self):
        nus = [hs_coupling(u, 0.125) for u in (1, 2, 4, 8)]
        assert all(b > a for a, b in zip(nus, nus[1:]))


class TestModel:
    def test_dtau(self):
        m = HubbardModel(SquareLattice(4, 4), u=2.0, beta=8.0, n_slices=64)
        assert m.dtau == pytest.approx(0.125)

    def test_validation(self):
        lat = SquareLattice(2, 2)
        with pytest.raises(ValueError):
            HubbardModel(lat, u=-1.0)
        with pytest.raises(ValueError):
            HubbardModel(lat, u=1.0, beta=-2.0)
        with pytest.raises(ValueError):
            HubbardModel(lat, u=1.0, n_slices=0)

    def test_with_replaces_fields(self):
        m = HubbardModel(SquareLattice(4, 4), u=2.0)
        m2 = m.with_(u=6.0, mu=-0.3)
        assert m2.u == 6.0 and m2.mu == -0.3 and m2.lattice is m.lattice
        assert m.u == 2.0  # original untouched


class TestKineticMatrix:
    def test_square_lattice_structure(self):
        m = HubbardModel(SquareLattice(4, 4), u=2.0, t=1.5, mu=0.3)
        k = m.kinetic_matrix()
        assert np.array_equal(k, k.T)
        np.testing.assert_allclose(np.diag(k), -0.3)
        off = k - np.diag(np.diag(k))
        assert set(np.unique(off)) == {0.0, -1.5}
        # each site has 4 bonds
        assert np.count_nonzero(off[0]) == 4

    def test_spectrum_matches_dispersion(self):
        """Eigenvalues of K must be the tight-binding band energies."""
        from repro import free_dispersion_2d, momentum_grid

        lat = SquareLattice(6, 6)
        m = HubbardModel(lat, u=0.0, t=1.0, mu=0.2)
        w = np.linalg.eigvalsh(m.kinetic_matrix())
        kpts = momentum_grid(6, 6)
        expected = np.sort(free_dispersion_2d(kpts[:, 0], kpts[:, 1], t=1.0, mu=0.2))
        np.testing.assert_allclose(np.sort(w), expected, atol=1e-12)

    def test_multilayer_couplings(self):
        m = HubbardModel(
            MultilayerLattice(3, 3, 2), u=2.0, t=1.0, t_perp=0.5, mu=0.0
        )
        k = m.kinetic_matrix()
        # intra-layer bond
        assert k[0, 1] == -1.0
        # inter-layer bond (site 0 of layer 0 <-> site 0 of layer 1)
        assert k[0, 9] == -0.5
        assert np.array_equal(k, k.T)

    def test_mu_only_on_diagonal(self):
        m = HubbardModel(SquareLattice(3, 3), u=1.0, mu=0.7)
        k0 = HubbardModel(SquareLattice(3, 3), u=1.0, mu=0.0).kinetic_matrix()
        np.testing.assert_allclose(m.kinetic_matrix() - k0, -0.7 * np.eye(9))
