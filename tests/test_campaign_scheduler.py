"""Fault-injection tests for the campaign scheduler.

The ISSUE acceptance criteria live here:

* a worker killed mid-job is retried with backoff and the campaign
  still completes with every job done and exactly one recorded retry;
* the faulted campaign's catalog is bit-for-bit identical to an
  uninterrupted run's (checkpoint resume is exact);
* when retries are exhausted the job is marked failed but the campaign
  completes;
* after a mid-campaign SIGKILL, ``resume`` finishes only the missing
  jobs (done jobs' run counters do not move) and reaches the same
  catalog.

Thread-executor faults (``mode="exception"``) cover the retry logic
cheaply; the process-executor kill tests prove real process isolation.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    FaultPlan,
    Manifest,
    ResultsCatalog,
    SchedulerConfig,
    WorkerTimeout,
    run_campaign,
    run_subprocess_task,
    run_tasks,
)
from repro.telemetry import Telemetry

BASE = {
    "nx": 2, "ny": 2, "dtau": 0.125, "l": 8, "north": 4,
    "nwarm": 2, "npass": 4,
}


def make_spec(npass=4, checkpoint_every=2, grid=None):
    return CampaignSpec(
        name="sched",
        base={**BASE, "npass": npass},
        grid=grid or {"u": [2.0, 4.0]},
        base_seed=7,
        checkpoint_every=checkpoint_every,
    )


def thread_cfg(**kw):
    kw.setdefault("executor", "thread")
    kw.setdefault("backoff_base", 0.0)  # no real sleeping in tests
    return SchedulerConfig(**kw)


def runs_by_index(campaign_dir):
    man = Manifest.load(campaign_dir)
    try:
        return {j.index: man.states[j.job_id].runs for j in man.jobs}
    finally:
        man.close()


def catalog_arrays(campaign_dir):
    """Every observable array of every job, keyed for exact comparison."""
    catalog = ResultsCatalog.load(campaign_dir)
    out = {}
    for rec in sorted(catalog.select(), key=lambda r: r.index):
        for name, est in rec.observables().items():
            out[(rec.index, name, "mean")] = np.asarray(est.mean)
            out[(rec.index, name, "error")] = np.asarray(est.error)
    return out


def assert_catalogs_identical(dir_a, dir_b):
    a, b = catalog_arrays(dir_a), catalog_arrays(dir_b)
    assert a.keys() == b.keys() and a
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=str(key))


class TestConfigValidation:
    def test_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            SchedulerConfig(executor="mpi")

    def test_max_attempts_floor(self):
        with pytest.raises(ValueError, match="max_attempts"):
            SchedulerConfig(max_attempts=0)

    def test_backoff_validation(self):
        with pytest.raises(ValueError, match="backoff"):
            SchedulerConfig(backoff_base=-1.0)
        with pytest.raises(ValueError, match="backoff"):
            SchedulerConfig(backoff_factor=0.5)

    def test_timeout_requires_process(self):
        with pytest.raises(ValueError, match="timeout"):
            SchedulerConfig(executor="thread", timeout=5.0)


class TestRetryLogic:
    def test_exception_fault_retried_once(self, tmp_path):
        """Fault on attempt 1 only -> one retry, then done."""
        summary = run_campaign(
            make_spec(),
            tmp_path / "c",
            config=thread_cfg(
                fault_plan=FaultPlan(
                    kill_job=1, on_attempt=1, mode="exception"
                ),
            ),
        )
        assert summary.all_done
        assert summary.retries == 1
        assert runs_by_index(tmp_path / "c") == {0: 1, 1: 2}

    def test_retries_exhausted_marks_failed_campaign_completes(
        self, tmp_path
    ):
        """on_attempt=0 faults every attempt: the job burns its whole
        budget and fails, but the other job still finishes."""
        summary = run_campaign(
            make_spec(),
            tmp_path / "c",
            config=thread_cfg(
                max_attempts=3,
                fault_plan=FaultPlan(
                    kill_job=0, on_attempt=0, mode="exception"
                ),
            ),
        )
        assert summary.complete and not summary.all_done
        assert summary.counts["done"] == 1
        assert summary.counts["failed"] == 1
        man = Manifest.load(tmp_path / "c")
        failed = next(
            s for s in man.states.values() if s.status == "failed"
        )
        assert failed.runs == 3
        assert "injected fault" in failed.last_error
        man.close()

    def test_backoff_schedule_is_exponential(self, tmp_path, monkeypatch):
        delays = []
        monkeypatch.setattr(time, "sleep", lambda s: delays.append(s))
        run_campaign(
            make_spec(grid={"u": [2.0]}),
            tmp_path / "c",
            config=thread_cfg(
                max_attempts=4,
                backoff_base=0.25,
                backoff_factor=2.0,
                max_workers=1,
                fault_plan=FaultPlan(
                    kill_job=0, on_attempt=0, mode="exception"
                ),
            ),
        )
        assert delays == [0.25, 0.5, 1.0]  # no sleep after the last attempt

    def test_retry_failed_gives_fresh_budget(self, tmp_path):
        """resume --retry-failed reruns a failed job; with the fault gone
        it succeeds, and attempt numbers continue across sessions."""
        spec = make_spec(grid={"u": [2.0]})
        run_campaign(
            spec,
            tmp_path / "c",
            config=thread_cfg(
                max_attempts=2,
                fault_plan=FaultPlan(
                    kill_job=0, on_attempt=0, mode="exception"
                ),
            ),
        )
        summary = run_campaign(
            spec,
            tmp_path / "c",
            config=thread_cfg(retry_failed=True),
            resume=True,
        )
        assert summary.all_done
        assert runs_by_index(tmp_path / "c") == {0: 3}  # 2 failed + 1 clean

    def test_resume_spec_mismatch_rejected(self, tmp_path):
        from repro.campaign import ManifestError

        run_campaign(make_spec(grid={"u": [2.0]}), tmp_path / "c",
                     config=thread_cfg())
        with pytest.raises(ManifestError, match="spec does not match"):
            run_campaign(
                make_spec(grid={"u": [3.0]}), tmp_path / "c",
                config=thread_cfg(), resume=True,
            )


class TestProcessFaults:
    def test_sigkill_fault_bit_identical_catalog(self, tmp_path):
        """ISSUE acceptance: 2x2 grid, worker SIGKILLed mid-job after a
        checkpoint -> all done, exactly one retry, catalog bit-for-bit
        equal to a fault-free run."""
        spec = make_spec(
            npass=6, grid={"u": [2.0, 4.0], "mu": [0.0, -0.25]}
        )
        clean = run_campaign(
            spec, tmp_path / "clean", config=SchedulerConfig()
        )
        assert clean.all_done and clean.retries == 0
        faulted = run_campaign(
            spec,
            tmp_path / "faulted",
            config=SchedulerConfig(
                backoff_base=0.0,
                fault_plan=FaultPlan(
                    kill_job=2, on_attempt=1, mode="kill", after_sweeps=2
                ),
            ),
        )
        assert faulted.all_done
        assert faulted.retries == 1
        assert runs_by_index(tmp_path / "faulted") == {0: 1, 1: 1, 2: 2, 3: 1}
        assert_catalogs_identical(tmp_path / "clean", tmp_path / "faulted")

    def test_mid_campaign_sigkill_then_resume(self, tmp_path):
        """SIGKILL the whole scheduler process mid-campaign; resume
        finishes only the missing jobs and matches a clean catalog."""
        spec = make_spec(npass=6)
        clean = run_campaign(
            spec, tmp_path / "clean", config=SchedulerConfig()
        )
        assert clean.all_done

        camp = tmp_path / "killed"
        (tmp_path / "spec.json").write_text(json.dumps(spec.to_dict()))
        (tmp_path / "runner.py").write_text(
            "from repro.campaign import (CampaignSpec, SchedulerConfig,\n"
            "                            run_campaign)\n"
            f"spec = CampaignSpec.load({str(tmp_path / 'spec.json')!r})\n"
            f"run_campaign(spec, {str(camp)!r},\n"
            "             config=SchedulerConfig(max_workers=1))\n"
        )
        proc = subprocess.Popen(
            [sys.executable, str(tmp_path / "runner.py")],
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(p for p in sys.path if p),
            },
            start_new_session=True,
        )
        done_before = 0
        try:
            # wait until >= 1 job is done, then SIGKILL the process group
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                try:
                    man = Manifest.load(camp)
                except Exception:
                    time.sleep(0.1)
                    continue
                done_before = man.counts().get("done", 0)
                man.close()
                if done_before >= 1:
                    os.killpg(proc.pid, signal.SIGKILL)
                    proc.wait()
                    break
                time.sleep(0.05)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait()
        assert done_before >= 1, "runner never reached a done job"

        man = Manifest.load(camp)
        pre_runs = {
            j.job_id: man.states[j.job_id].runs
            for j in man.jobs
            if man.states[j.job_id].status == "done"
        }
        man.close()
        assert pre_runs  # at least one job finished before the kill

        summary = run_campaign(
            spec, camp, config=SchedulerConfig(), resume=True
        )
        assert summary.all_done
        man = Manifest.load(camp)
        for job_id, runs in pre_runs.items():
            # completed jobs were NOT re-run by the resume
            assert man.states[job_id].runs == runs
        man.close()
        assert_catalogs_identical(tmp_path / "clean", camp)

    def test_hang_trips_timeout_and_retry_recovers(self, tmp_path):
        """A hanging worker is killed at the wall-time budget and the
        retry (fault only on attempt 1) completes the job."""
        summary = run_campaign(
            make_spec(grid={"u": [2.0]}),
            tmp_path / "c",
            config=SchedulerConfig(
                timeout=5.0,
                backoff_base=0.0,
                fault_plan=FaultPlan(
                    kill_job=0, on_attempt=1, mode="hang", hang_seconds=60
                ),
            ),
        )
        assert summary.all_done
        assert summary.retries == 1


class TestWorkerLayer:
    def test_run_tasks_validates_executor(self):
        with pytest.raises(ValueError, match="executor"):
            run_tasks(len, [{}], executor="mpi")

    def test_subprocess_task_roundtrip(self):
        assert run_subprocess_task(_echo, {"x": 3}) == {"x": 3}

    def test_subprocess_task_error_propagates(self):
        with pytest.raises(RuntimeError, match="worker failed.*boom"):
            run_subprocess_task(_boom, {})

    def test_subprocess_task_timeout(self):
        with pytest.raises(WorkerTimeout):
            run_subprocess_task(_sleep_forever, {}, timeout=1.0)


class TestTelemetry:
    def test_events_and_gauges(self, tmp_path):
        tel = Telemetry(writer=None, snapshot_every=0)
        events = []
        tel.event = lambda kind, **f: events.append((kind, f))  # capture
        summary = run_campaign(
            make_spec(),
            tmp_path / "c",
            config=thread_cfg(
                fault_plan=FaultPlan(
                    kill_job=0, on_attempt=1, mode="exception"
                ),
            ),
            telemetry=tel,
        )
        assert summary.all_done
        kinds = [k for k, _ in events]
        assert kinds[0] == "campaign_started"
        assert "campaign_done" in kinds
        assert kinds.count("job_done") == 2
        assert kinds.count("job_retry") == 1
        retry = next(f for k, f in events if k == "job_retry")
        assert "injected fault" in retry["error"]
        gauges = tel.registry.gauges
        assert gauges["campaign.jobs_done"] == 2
        assert gauges["campaign.jobs_total"] == 2
        assert gauges["campaign.retries"] == 1


class TestExtensions:
    """Error-targeted jobs get extra budget rounds (max_extensions)."""

    def summaries(self, campaign_dir):
        man = Manifest.load(campaign_dir)
        try:
            return {
                j.index: man.states[j.job_id].summary for j in man.jobs
            }
        finally:
            man.close()

    def test_unmet_target_exhausts_extension_rounds(self, tmp_path):
        # npass = 16 and the controller's min_samples is 64, so the
        # target is never evaluated, never met — every round is granted.
        spec = CampaignSpec(
            name="ext",
            base={**BASE, "npass": 16, "target_error": 1e-9},
            grid={"u": [4.0]},
            base_seed=7,
            checkpoint_every=4,
        )
        tel = Telemetry(writer=None, snapshot_every=0)
        events = []
        tel.event = lambda kind, **f: events.append((kind, f))
        summary = run_campaign(
            spec,
            tmp_path / "c",
            config=thread_cfg(max_extensions=2),
            telemetry=tel,
        )
        assert summary.all_done
        kinds = [k for k, _ in events]
        assert kinds.count("job_extended") == 2
        job = self.summaries(tmp_path / "c")[0]
        assert job["extend_round"] == 2
        assert job["budget_sweeps"] == 48
        assert job["measured_sweeps"] == 48
        assert job["control"]["target_met"] is False

    def test_extension_reaches_target_and_stops(self, tmp_path):
        # Base budget 48 < min_samples 64: the first round's extra
        # budget lets the controller evaluate — and half-filled density
        # converges immediately, so round 2 is never requested.
        spec = CampaignSpec(
            name="ext2",
            base={**BASE, "npass": 48, "target_error": 0.05},
            grid={"u": [4.0]},
            base_seed=7,
            checkpoint_every=4,
        )
        tel = Telemetry(writer=None, snapshot_every=0)
        events = []
        tel.event = lambda kind, **f: events.append((kind, f))
        summary = run_campaign(
            spec,
            tmp_path / "c",
            config=thread_cfg(max_extensions=3),
            telemetry=tel,
        )
        assert summary.all_done
        kinds = [k for k, _ in events]
        assert kinds.count("job_extended") == 1
        job = self.summaries(tmp_path / "c")[0]
        assert job["extend_round"] == 1
        assert job["control"]["target_met"] is True
        assert job["measured_sweeps"] <= job["budget_sweeps"]

    def test_no_extensions_without_controller(self, tmp_path):
        tel = Telemetry(writer=None, snapshot_every=0)
        events = []
        tel.event = lambda kind, **f: events.append((kind, f))
        summary = run_campaign(
            make_spec(),
            tmp_path / "c",
            config=thread_cfg(max_extensions=3),
            telemetry=tel,
        )
        assert summary.all_done
        assert "job_extended" not in [k for k, _ in events]

    def test_negative_max_extensions_rejected(self):
        with pytest.raises(ValueError, match="max_extensions"):
            SchedulerConfig(executor="thread", max_extensions=-1)


# module-level helpers for the subprocess worker tests (the child
# process imports them by qualified name)
def _echo(payload):
    return payload


def _boom(payload):
    raise ValueError("boom")


def _sleep_forever(payload):
    time.sleep(600)
