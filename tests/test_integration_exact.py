"""Integration tests against exact references.

Three layers of ground truth:

1. **HS enumeration** — exact for the Trotterized theory: validates the
   Monte Carlo sampler (sweep + rank-1 updates + stratification) with no
   discretization caveat.
2. **Exact diagonalization** — continuum imaginary time: validates that
   the Trotterized enumeration converges to the true quantum answer at
   the documented O(dtau^2) rate.
3. **Free fermions** — exact at any system size for U = 0.
"""

import numpy as np
import pytest

from repro import HubbardModel, Simulation, SquareLattice
from tests.ed_reference import HubbardED
from tests.enumeration_reference import enumerate_dqmc


def dimer_model(n_slices, beta=2.0, u=4.0):
    return HubbardModel(
        SquareLattice(2, 1), u=u, beta=beta, n_slices=n_slices
    )


class TestSamplerVsEnumeration:
    """MC with many sweeps must match exact enumeration at the same dtau."""

    @pytest.fixture(scope="class")
    def reference(self):
        return enumerate_dqmc(dimer_model(n_slices=4))

    @pytest.fixture(scope="class")
    def mc(self):
        sim = Simulation(
            dimer_model(n_slices=4), seed=20, cluster_size=4, max_delay=2
        )
        return sim.run(warmup_sweeps=200, measurement_sweeps=3000)

    def test_density(self, reference, mc):
        est = mc.observables["density"]
        assert est.scalar == pytest.approx(reference.density, abs=1e-9)

    def test_double_occupancy(self, reference, mc):
        est = mc.observables["double_occupancy"]
        assert abs(est.scalar - reference.double_occupancy) < 5 * est.error

    def test_kinetic_energy(self, reference, mc):
        est = mc.observables["kinetic_energy"]
        assert abs(est.scalar - reference.kinetic_energy) < 5 * est.error

    def test_spin_zz(self, reference, mc):
        czz = mc.observables["spin_zz"]
        got = float(np.asarray(czz.mean)[1])  # displacement (1, 0)
        err = float(np.asarray(czz.error)[1])
        assert abs(got - reference.spin_zz_nn) < 5 * max(err, 1e-4)

    def test_error_bars_are_honest(self, mc, reference):
        """The quoted error must not be wildly small: check the pull of
        double occupancy is O(1), not O(10)."""
        est = mc.observables["double_occupancy"]
        pull = abs(est.scalar - reference.double_occupancy) / est.error
        assert pull < 5.0

    def test_alternating_directions_sample_same_distribution(self, reference):
        """Forward/backward alternation (QUEST's sweep pattern) must
        converge to the same exact answers."""
        sim = Simulation(
            dimer_model(n_slices=4), seed=21, cluster_size=4,
            max_delay=2, alternate_directions=True,
        )
        res = sim.run(warmup_sweeps=200, measurement_sweeps=3000)
        assert res.observables["density"].scalar == pytest.approx(
            reference.density, abs=1e-9
        )
        est = res.observables["double_occupancy"]
        assert abs(est.scalar - reference.double_occupancy) < 5 * est.error


class TestTrotterConvergence:
    def test_enumeration_converges_to_ed_quadratically(self):
        """|enumeration(dtau) - ED| must shrink ~ dtau^2 (beta fixed)."""
        model = dimer_model(n_slices=2, beta=1.0)
        ed = HubbardED(model.kinetic_matrix(), u=model.u)
        exact = ed.double_occupancy(1.0)
        errors = []
        for nl in (2, 4, 8):
            res = enumerate_dqmc(dimer_model(n_slices=nl, beta=1.0))
            errors.append(abs(res.double_occupancy - exact))
        # halving dtau should cut the error by ~4; demand at least 2.5
        assert errors[0] / errors[1] > 2.5
        assert errors[1] / errors[2] > 2.5

    def test_density_exact_at_any_dtau(self):
        """Particle-hole symmetry holds slice-by-slice, so the density is
        exactly 1 at mu = 0 for every discretization."""
        for nl in (2, 4):
            res = enumerate_dqmc(dimer_model(n_slices=nl, beta=1.0))
            assert res.density == pytest.approx(1.0, abs=1e-12)

    def test_ed_self_consistency_u0(self):
        """ED at U = 0 must match the free-fermion closed form."""
        from repro.hamiltonian import free_greens_function
        from repro.measure import total_density

        model = dimer_model(n_slices=2, beta=1.7, u=0.0)
        ed = HubbardED(model.kinetic_matrix(), u=0.0)
        g = free_greens_function(model.kinetic_matrix(), 1.7)
        assert ed.density(1.7) == pytest.approx(total_density(g, g), abs=1e-10)

    def test_ed_strong_coupling_limit(self):
        """U >> t at low T: double occupancy is suppressed toward 0 and
        the local moment saturates."""
        model = dimer_model(n_slices=2, beta=8.0, u=12.0)
        ed = HubbardED(model.kinetic_matrix(), u=12.0)
        # the periodic 2-site ring has t_eff = 2t, so the residual double
        # occupancy ~ (4 t_eff / U)^2 scale is a few percent at U = 12
        assert ed.double_occupancy(8.0) < 0.05
        assert ed.double_occupancy(8.0) < 0.5 * ed.double_occupancy(0.25)
        # local moment <m_z^2> = <n> - 2<n+n-> -> 1
        assert ed.spin_zz(8.0, 0, 0) > 0.9

    def test_ed_antiferromagnetic_dimer(self):
        """The half-filled dimer ground state is a singlet: strictly
        negative nearest-neighbor spin correlation."""
        model = dimer_model(n_slices=2, beta=6.0, u=4.0)
        ed = HubbardED(model.kinetic_matrix(), u=4.0)
        assert ed.spin_zz(6.0, 0, 1) < -0.3


class TestFreeFermionPipeline:
    def test_full_mc_pipeline_at_u0(self):
        """Every U = 0 observable through the complete MC machinery must
        hit the analytic value to ~machine precision (the field decouples,
        so there is no statistical error at all)."""
        from repro import free_greens_function, momentum_grid
        from repro.hamiltonian import free_dispersion_2d
        from repro.measure import momentum_distribution

        lat = SquareLattice(4, 4)
        model = HubbardModel(lat, u=0.0, beta=4.0, n_slices=32)
        res = Simulation(model, seed=3, cluster_size=8).run(1, 3)
        nk = np.asarray(res.observables["momentum_distribution"].mean)
        k = momentum_grid(4, 4)
        eps = free_dispersion_2d(k[:, 0], k[:, 1])
        expected = 1.0 / (1.0 + np.exp(4.0 * eps))
        np.testing.assert_allclose(nk, expected, atol=1e-7)

    def test_trotter_error_absent_at_u0(self):
        """With U = 0 the Trotter decomposition is exact: L = 4 and
        L = 32 must agree to machine precision."""
        lat = SquareLattice(2, 2)
        vals = []
        for nl in (4, 32):
            model = HubbardModel(lat, u=0.0, beta=2.0, n_slices=nl)
            res = Simulation(model, seed=1, cluster_size=nl // 2).run(0, 1)
            vals.append(res.observables["kinetic_energy"].scalar)
        assert vals[0] == pytest.approx(vals[1], abs=1e-10)
