"""Unit tests for charge and pairing observables."""

import numpy as np
import pytest

from repro import HubbardModel, Simulation, SquareLattice
from repro.hamiltonian import free_greens_function
from repro.measure import (
    charge_density_correlation,
    charge_structure_factor,
    dwave_pair_structure_factor,
    swave_pair_correlation,
    swave_pair_structure_factor,
)


@pytest.fixture
def free_case():
    lat = SquareLattice(4, 4)
    model = HubbardModel(lat, u=0.0, beta=3.0)
    g = free_greens_function(model.kinetic_matrix(), 3.0)
    return lat, g


class TestChargeCorrelation:
    def test_local_value_free(self, free_case):
        """U = 0 on-site connected density fluctuation:
        <n^2> - <n>^2 = 2 <n_s>(1 - <n_s>) = 1/2 at half filling."""
        lat, g = free_case
        cnn = charge_density_correlation(lat, g, g)
        assert cnn[0] == pytest.approx(0.5, abs=1e-10)

    def test_sum_rule_compressibility(self, free_case):
        """sum_r C_nn(r) = N(q=0): for the per-sample estimator with the
        sample mean subtracted, the q = 0 value measures only the
        exchange term (the density part cancels exactly)."""
        lat, g = free_case
        cnn = charge_density_correlation(lat, g, g)
        n0 = charge_structure_factor(lat, cnn, q_index=lat.index(0, 0))
        # against a direct evaluation of the same contraction
        direct = 0.0
        n = lat.n_sites
        for gs in (g, g):
            direct += np.trace(g) - np.sum(g * g.T)
        assert n0 == pytest.approx(direct / n, abs=1e-10)

    def test_wick_vs_brute_force_dimer(self):
        lat = SquareLattice(2, 1)
        rng = np.random.default_rng(1)
        g_up = rng.normal(size=(2, 2))
        g_dn = rng.normal(size=(2, 2))
        cnn = charge_density_correlation(lat, g_up, g_dn)

        def n_of(g, i):
            return 1.0 - g[i, i]

        dens = [n_of(g_up, i) + n_of(g_dn, i) for i in range(2)]
        mean_d = sum(dens) / 2.0
        expected = np.zeros(2)
        for r in range(2):
            acc = 0.0
            for b in range(2):
                a = (b + r) % 2
                val = dens[a] * dens[b]
                for g in (g_up, g_dn):
                    d_ab = 1.0 if a == b else 0.0
                    val += (d_ab - g[b, a]) * g[a, b]
                acc += val
            expected[r] = acc / 2.0 - mean_d**2
        np.testing.assert_allclose(cnn, expected, atol=1e-12)

    def test_charge_suppressed_vs_spin_at_large_u(self):
        """Half filling, strong U: S_spin(pi,pi) >> N_charge(pi,pi)."""
        model = HubbardModel(SquareLattice(4, 4), u=6.0, beta=3.0, n_slices=24)
        res = Simulation(model, seed=5, cluster_size=8).run(10, 30)
        s_spin = res.observables["af_structure_factor"].scalar
        cnn = np.asarray(res.observables["charge_nn"].mean)
        n_charge = charge_structure_factor(SquareLattice(4, 4), cnn)
        assert s_spin > 3.0 * abs(n_charge)

    def test_structure_factor_odd_lattice_guard(self):
        with pytest.raises(ValueError):
            charge_structure_factor(SquareLattice(3, 3), np.zeros(9))


class TestPairing:
    def test_swave_free_value(self, free_case):
        """U = 0: P_s(r) = G(r)^2 elementwise (both spins identical)."""
        lat, g = free_case
        ps = swave_pair_correlation(lat, g, g)
        from repro.measure import greens_displacement_average

        # translation-invariant free G: P_s(r) = mean_b G(b+r,b)^2
        n = lat.n_sites
        tt = lat.translation_table
        rows = np.arange(n)[None, :]
        expected = (g[tt, rows] ** 2).mean(axis=1)
        np.testing.assert_allclose(ps, expected, atol=1e-12)
        del greens_displacement_average

    def test_swave_structure_factor_positive_free(self, free_case):
        lat, g = free_case
        assert swave_pair_structure_factor(lat, g, g) > 0

    def test_dwave_identity_greens(self):
        """With G = I (empty lattice), only delta = delta' terms survive
        and P_d = (1/4N) * sum_delta f^2 * N = 1."""
        lat = SquareLattice(4, 4)
        g = np.eye(16)
        assert dwave_pair_structure_factor(lat, g, g) == pytest.approx(1.0)

    def test_repulsion_suppresses_swave(self):
        """On-site repulsion suppresses on-site pairing relative to U=0."""
        out = {}
        for u in (0.0, 8.0):
            model = HubbardModel(
                SquareLattice(4, 4), u=u, beta=3.0, n_slices=24
            )
            res = Simulation(model, seed=6, cluster_size=8).run(8, 25)
            out[u] = res.observables["swave_pairing"].scalar
        assert out[8.0] < out[0.0]

    def test_dwave_brute_force_small(self):
        """d-wave contraction against an explicit quadruple loop."""
        lat = SquareLattice(2, 2)
        rng = np.random.default_rng(2)
        g_up = rng.normal(size=(4, 4))
        g_dn = rng.normal(size=(4, 4))
        deltas = [
            (lat.index(1, 0), 1.0),
            (lat.index(-1, 0), 1.0),
            (lat.index(0, 1), -1.0),
            (lat.index(0, -1), -1.0),
        ]
        tt = lat.translation_table
        expected = 0.0
        for i in range(4):
            for j in range(4):
                for d1, f1 in deltas:
                    for d2, f2 in deltas:
                        expected += (
                            f1 * f2 * g_up[tt[d1, i], tt[d2, j]] * g_dn[i, j]
                        )
        expected /= 4.0 * 4
        got = dwave_pair_structure_factor(lat, g_up, g_dn)
        assert got == pytest.approx(expected, rel=1e-12)
