"""Unit tests for campaign spec expansion, seeding and job identity."""

import json

import numpy as np
import pytest

from repro.campaign import CampaignSpec, JobSpec, SpecError

BASE = {
    "nx": 2, "ny": 2, "dtau": 0.125, "l": 8, "north": 4,
    "nwarm": 2, "npass": 4,
}


def make_spec(**overrides):
    kwargs = dict(
        name="t",
        base=dict(BASE),
        grid={"u": [2.0, 4.0], "mu": [0.0, -0.25]},
        base_seed=3,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestExpansion:
    def test_grid_size_and_order(self):
        jobs = make_spec().expand()
        assert len(jobs) == 4
        # sorted grid keys (mu before u), user value order preserved
        assert [(j.params["mu"], j.params["u"]) for j in jobs] == [
            (0.0, 2.0), (0.0, 4.0), (-0.25, 2.0), (-0.25, 4.0),
        ]
        assert [j.index for j in jobs] == [0, 1, 2, 3]

    def test_replicas_are_innermost(self):
        jobs = make_spec(grid={"u": [2.0, 4.0]}, replicas=2).expand()
        assert len(jobs) == 4
        assert [j.params["u"] for j in jobs] == [2.0, 2.0, 4.0, 4.0]
        # distinct seeds, same params
        assert jobs[0].params == jobs[1].params
        assert jobs[0].spawn_key != jobs[1].spawn_key

    def test_params_are_fully_resolved(self):
        job = make_spec().expand()[0]
        assert job.params["method"] == "prepivot"  # default filled in
        assert "seed" not in job.params  # campaign-managed

    def test_expansion_is_deterministic(self):
        a = make_spec().expand()
        b = make_spec().expand()
        assert [j.job_id for j in a] == [j.job_id for j in b]

    def test_counts(self):
        spec = make_spec(replicas=3)
        assert spec.n_points == 4
        assert spec.n_jobs == 12


class TestSeeding:
    def test_spawn_key_matches_seedsequence_spawn(self):
        """Job seeds ARE SeedSequence(base_seed).spawn(n) children."""
        jobs = make_spec().expand()
        spawned = np.random.SeedSequence(3).spawn(len(jobs))
        for job, child in zip(jobs, spawned):
            assert job.seed_sequence().spawn_key == child.spawn_key
            assert (
                job.seed_sequence().generate_state(4).tolist()
                == child.generate_state(4).tolist()
            )

    def test_streams_are_distinct(self):
        jobs = make_spec().expand()
        states = {tuple(j.seed_sequence().generate_state(4)) for j in jobs}
        assert len(states) == len(jobs)


class TestJobIdentity:
    def test_id_is_content_hash(self):
        job = make_spec().expand()[0]
        assert job.job_id == job.compute_id()
        assert len(job.job_id) == 12

    def test_id_changes_with_params_and_seed(self):
        base = make_spec().expand()[0]
        other_u = make_spec(grid={"u": [3.0, 4.0], "mu": [0.0, -0.25]})
        assert other_u.expand()[0].job_id != base.job_id
        other_seed = make_spec(base_seed=4)
        assert other_seed.expand()[0].job_id != base.job_id

    def test_roundtrip_dict(self):
        job = make_spec().expand()[2]
        clone = JobSpec.from_dict(job.to_dict())
        assert clone == job


class TestValidation:
    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="temperature"):
            make_spec(grid={"temperature": [1.0]})

    def test_seed_key_is_reserved(self):
        with pytest.raises(SpecError, match="campaign-managed"):
            make_spec(base={**BASE, "seed": 1})
        with pytest.raises(SpecError, match="campaign-managed"):
            make_spec(grid={"seed": [1, 2]})

    def test_base_grid_overlap_rejected(self):
        with pytest.raises(SpecError, match="both base and grid"):
            make_spec(base={**BASE, "u": 2.0})

    def test_empty_grid_values_rejected(self):
        with pytest.raises(SpecError, match="non-empty"):
            make_spec(grid={"u": []})

    def test_replicas_validated(self):
        with pytest.raises(SpecError):
            make_spec(replicas=0)

    def test_bad_config_point_fails_at_expansion(self):
        # north does not divide l only for the swept value
        base = {k: v for k, v in BASE.items() if k != "north"}
        spec = make_spec(base=base, grid={"north": [4, 3]})
        with pytest.raises(ValueError, match="north"):
            spec.expand()

    def test_bad_backend_fails_at_expansion(self):
        spec = make_spec(grid={"backend": ["numpy", "not-a-backend"]})
        with pytest.raises(ValueError, match="backend"):
            spec.expand()


class TestSerialization:
    def test_json_roundtrip(self):
        spec = make_spec(replicas=2, checkpoint_every=7)
        clone = CampaignSpec.from_json(json.dumps(spec.to_dict()))
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_load_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(make_spec().to_dict()))
        assert CampaignSpec.load(path) == make_spec()

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(SpecError, match="unknown spec key"):
            CampaignSpec.from_dict({"name": "x", "gird": {}})

    def test_bad_json_rejected(self):
        with pytest.raises(SpecError, match="JSON"):
            CampaignSpec.from_json("{nope")
        with pytest.raises(SpecError, match="object"):
            CampaignSpec.from_json("[1]")
