"""Unit tests for the periodic rectangular lattice."""

import numpy as np
import pytest

from repro import SquareLattice


class TestIndexing:
    def test_roundtrip_all_sites(self):
        lat = SquareLattice(5, 3)
        for i in range(lat.n_sites):
            x, y = lat.coords(i)
            assert lat.index(x, y) == i

    def test_index_wraps_periodically(self):
        lat = SquareLattice(4, 4)
        assert lat.index(4, 0) == lat.index(0, 0)
        assert lat.index(-1, 2) == lat.index(3, 2)
        assert lat.index(2, -5) == lat.index(2, 3)

    def test_coords_out_of_range_raises(self):
        lat = SquareLattice(3, 3)
        with pytest.raises(IndexError):
            lat.coords(9)
        with pytest.raises(IndexError):
            lat.coords(-1)

    def test_coord_array_matches_coords(self):
        lat = SquareLattice(4, 6)
        ca = lat.coord_array
        for i in range(lat.n_sites):
            assert tuple(ca[i]) == lat.coords(i)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SquareLattice(0, 4)
        with pytest.raises(ValueError):
            SquareLattice(4, -1)


class TestNeighbors:
    def test_neighbor_count_and_symmetry(self):
        lat = SquareLattice(4, 4)
        for i in range(lat.n_sites):
            for j in lat.neighbors(i):
                assert i in lat.neighbors(j)

    def test_neighbor_table_matches_neighbors(self):
        lat = SquareLattice(3, 5)
        nt = lat.neighbor_table
        for i in range(lat.n_sites):
            assert tuple(nt[i]) == lat.neighbors(i)

    def test_neighbors_are_distance_one(self):
        lat = SquareLattice(6, 6)
        for i in range(lat.n_sites):
            for j in lat.neighbors(i):
                dx, dy = lat.displacement(i, j)
                assert abs(dx) + abs(dy) == 1


class TestAdjacency:
    def test_symmetric_with_row_sum_four(self):
        lat = SquareLattice(4, 4)
        a = lat.adjacency
        assert np.array_equal(a, a.T)
        assert np.all(a.sum(axis=0) == 4)

    def test_no_self_loops(self):
        for shape in [(4, 4), (2, 2), (2, 1), (1, 1), (3, 1)]:
            a = SquareLattice(*shape).adjacency
            assert np.all(np.diag(a) == 0.0), shape

    def test_extent_two_gives_double_bond(self):
        lat = SquareLattice(2, 1)
        a = lat.adjacency
        assert a[0, 1] == 2.0 and a[1, 0] == 2.0

    def test_chain_geometry(self):
        lat = SquareLattice(5, 1)
        a = lat.adjacency
        assert np.all(a.sum(axis=0) == 2)  # 1D ring
        assert a[0, 4] == 1.0  # periodic wrap

    def test_total_bond_count(self):
        lat = SquareLattice(6, 4)
        # 2 bonds per site on a 2D torus with lx, ly > 2.
        assert lat.adjacency.sum() / 2.0 == 2 * lat.n_sites


class TestDisplacement:
    def test_minimal_image_range(self):
        lat = SquareLattice(6, 4)
        for i in range(lat.n_sites):
            for j in range(lat.n_sites):
                dx, dy = lat.displacement(i, j)
                assert -3 < dx <= 3
                assert -2 < dy <= 2

    def test_antisymmetry_modulo_boundary(self):
        lat = SquareLattice(5, 5)
        for i in [0, 7, 13]:
            for j in [2, 11, 24]:
                dx1, dy1 = lat.displacement(i, j)
                dx2, dy2 = lat.displacement(j, i)
                assert (dx1 + dx2) % 5 == 0
                assert (dy1 + dy2) % 5 == 0

    def test_displacement_index_definition(self):
        lat = SquareLattice(4, 4)
        for i in [0, 5, 10]:
            for j in [3, 8, 15]:
                r = lat.displacement_index(i, j)
                xi, yi = lat.coords(i)
                xr, yr = lat.coords(r)
                assert lat.index(xi + xr, yi + yr) == j


class TestTranslationTable:
    def test_row_zero_is_identity(self):
        lat = SquareLattice(4, 3)
        assert np.array_equal(lat.translation_table[0], np.arange(lat.n_sites))

    def test_rows_are_permutations(self):
        lat = SquareLattice(4, 4)
        tt = lat.translation_table
        for r in range(lat.n_sites):
            assert np.array_equal(np.sort(tt[r]), np.arange(lat.n_sites))

    def test_translation_matches_index_arithmetic(self):
        lat = SquareLattice(5, 4)
        tt = lat.translation_table
        for r in [1, 7, 13]:
            rx, ry = lat.coords(r)
            for i in [0, 9, 17]:
                xi, yi = lat.coords(i)
                assert tt[r, i] == lat.index(xi + rx, yi + ry)

    def test_group_property(self):
        """Translating by r then s equals translating by r + s."""
        lat = SquareLattice(4, 4)
        tt = lat.translation_table
        r, s = 5, 11
        rs = lat.displacement_index(0, tt[s, r])  # r + s as a site index
        assert np.array_equal(tt[s][tt[r]], tt[rs])
