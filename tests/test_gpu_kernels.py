"""Unit tests for the fused CUDA-style kernels (Algorithms 5 and 7)."""

import numpy as np
import pytest

from repro.gpu import (
    DeviceError,
    SimulatedDevice,
    scale_rows_kernel,
    two_sided_scale_kernel,
)


@pytest.fixture
def dev():
    return SimulatedDevice()


class TestScaleRowsKernel:
    @pytest.mark.parametrize("n", [1, 7, 255, 256, 257, 700])
    def test_matches_reference_all_grid_shapes(self, dev, rng, n):
        """Exercise full blocks, tail blocks and the k < n guard."""
        host_b = rng.normal(size=(n, 33))
        host_v = rng.normal(size=n)
        b = dev.set_matrix(host_b)
        v = dev.set_matrix(host_v)
        out = dev.alloc((n, 33))
        scale_rows_kernel(dev, v, b, out)
        np.testing.assert_allclose(
            dev.get_matrix(out), host_v[:, None] * host_b, atol=1e-14
        )

    def test_single_launch(self, dev, rng):
        b = dev.set_matrix(rng.normal(size=(512, 512)))
        v = dev.set_matrix(rng.normal(size=512))
        out = dev.alloc((512, 512))
        before = dev.kernel_launches
        scale_rows_kernel(dev, v, b, out)
        assert dev.kernel_launches - before == 1

    def test_custom_block_size(self, dev, rng):
        b = dev.set_matrix(rng.normal(size=(100, 10)))
        v = dev.set_matrix(rng.normal(size=100))
        out = dev.alloc((100, 10))
        scale_rows_kernel(dev, v, b, out, block=7)
        np.testing.assert_allclose(
            dev.get_matrix(out),
            dev.get_matrix(v)[:, None] * dev.get_matrix(b),
            atol=1e-14,
        )

    def test_shape_validation(self, dev):
        b = dev.alloc((4, 4))
        v = dev.alloc((5,))
        out = dev.alloc((4, 4))
        with pytest.raises(DeviceError):
            scale_rows_kernel(dev, v, b, out)

    def test_bad_block(self, dev):
        b = dev.alloc((4, 4))
        v = dev.alloc((4,))
        with pytest.raises(DeviceError):
            scale_rows_kernel(dev, v, b, b, block=0)


class TestTwoSidedScaleKernel:
    @pytest.mark.parametrize("n", [1, 16, 255, 256, 300])
    def test_matches_reference(self, dev, rng, n):
        host_g = rng.normal(size=(n, n))
        host_v = rng.uniform(0.5, 2.0, size=n)
        g = dev.set_matrix(host_g)
        v = dev.set_matrix(host_v)
        two_sided_scale_kernel(dev, v, g)
        expected = host_v[:, None] * host_g / host_v[None, :]
        np.testing.assert_allclose(dev.get_matrix(g), expected, atol=1e-13)

    def test_in_place(self, dev, rng):
        host = rng.normal(size=(8, 8))
        g = dev.set_matrix(host)
        v = dev.set_matrix(np.ones(8))
        two_sided_scale_kernel(dev, v, g)
        np.testing.assert_allclose(dev.get_matrix(g), host)  # v=1: identity

    def test_single_launch(self, dev, rng):
        g = dev.set_matrix(rng.normal(size=(300, 300)))
        v = dev.set_matrix(rng.uniform(1, 2, size=300))
        before = dev.kernel_launches
        two_sided_scale_kernel(dev, v, g)
        assert dev.kernel_launches - before == 1

    def test_requires_square(self, dev):
        g = dev.alloc((3, 4))
        v = dev.alloc((3,))
        with pytest.raises(DeviceError):
            two_sided_scale_kernel(dev, v, g)
