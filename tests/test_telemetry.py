"""Unit tests for the telemetry subsystem (registry, writer, watchdog,
facade, report) and its wiring through the simulation stack."""

import json

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import GreensFunctionEngine
from repro.dqmc import Simulation, run_ensemble, sweep
from repro.profiling import PhaseProfiler
from repro.telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    NullTelemetry,
    NumericalHealthWatchdog,
    StreamingHistogram,
    Telemetry,
    TelemetryWriter,
    WatchdogConfig,
    ensure_telemetry,
    read_events,
    render_report,
    summarize_jsonl,
)


def make_model(lx=2, ly=2, u=4.0, beta=1.0, n_slices=8):
    return HubbardModel(SquareLattice(lx, ly), u=u, beta=beta, n_slices=n_slices)


def make_engine(seed=0, **kwargs):
    model = make_model()
    rng = np.random.default_rng(seed)
    field = HSField.random(model.n_slices, model.n_sites, rng)
    return GreensFunctionEngine(
        BMatrixFactory(model), field, cluster_size=4, **kwargs
    ), rng


class TestStreamingHistogram:
    def test_moments(self):
        h = StreamingHistogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1.0 and h.max == 3.0

    def test_quantiles_bracket_the_data(self):
        h = StreamingHistogram()
        for v in np.linspace(1e-8, 1e-2, 100):
            h.observe(v)
        assert h.quantile(0.0) == h.min
        assert h.quantile(1.0) == h.max
        assert h.min <= h.quantile(0.5) <= 10 * h.max  # bucket resolution

    def test_custom_bounds(self):
        h = StreamingHistogram(bounds=[0.5])
        h.observe(0.2)
        h.observe(0.9)
        assert h.buckets == [1, 1]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram(bounds=[1.0, 0.5])

    def test_merge(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 2 and a.max == 3.0
        with pytest.raises(ValueError):
            a.merge(StreamingHistogram(bounds=[1.0]))

    def test_snapshot_is_json_serializable(self):
        h = StreamingHistogram()
        h.observe(0.5)
        json.dumps(h.snapshot())
        assert StreamingHistogram().snapshot() == {"count": 0}


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        r = MetricsRegistry()
        r.inc("a")
        r.inc("a", 2.0)
        r.set_gauge("g", 7.5)
        assert r.counter("a") == 3.0
        assert r.gauge("g") == 7.5
        assert r.counter("missing") == 0.0

    def test_snapshot_round_trips_through_json(self):
        r = MetricsRegistry()
        r.inc("c")
        r.set_gauge("g", 1.0)
        r.observe("h", 0.5)
        snap = json.loads(json.dumps(r.snapshot()))
        assert snap["counters"]["c"] == 1.0
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        a.set_gauge("g", 1.0)
        b.inc("c", 2)
        b.set_gauge("g", 9.0)
        b.observe("h", 1.0)
        a.merge(b)
        assert a.counter("c") == 3.0
        assert a.gauge("g") == 9.0  # last write wins
        assert a.histograms["h"].count == 1
        assert "c" in a.names() and "h" in a.names()


class TestTelemetryWriter:
    def test_writes_parseable_lines_with_seq(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path) as w:
            w.write("alpha", x=1)
            w.write("beta")
        events = list(read_events(path))
        assert [e["event"] for e in events] == ["alpha", "beta"]
        assert [e["seq"] for e in events] == [0, 1]
        assert events[0]["x"] == 1

    def test_no_file_until_first_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = TelemetryWriter(path)
        w.close()
        assert not path.exists()

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path) as w:
            w.write("ok")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "torn", "t"')  # interrupted mid-write
        events = list(read_events(path))
        assert [e["event"] for e in events] == ["ok"]

    def test_corrupt_middle_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('not json\n{"event": "ok", "t": 0, "seq": 1}\n')
        with pytest.raises(json.JSONDecodeError):
            list(read_events(path))


class DummyStats:
    """Stand-in SweepStats for facade-level tests."""

    proposed = 10
    accepted = 4
    negative_ratios = 1
    singular_rejects = 0
    refreshes = 2
    sign = -1.0
    acceptance_rate = 0.4


class TestTelemetryFacade:
    def test_sweep_done_counters_and_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(TelemetryWriter(path), snapshot_every=2)
        tel.sweep_done(1, DummyStats())
        tel.sweep_done(2, DummyStats())
        tel.close()
        reg = tel.registry
        assert reg.counter("sweep.count") == 2
        assert reg.counter("sweep.proposed") == 20
        assert reg.gauge("sweep.sign") == -1.0
        kinds = [e["event"] for e in read_events(path)]
        # snapshot cadence: one periodic snapshot at sweep 2 + final on close
        assert kinds == ["sweep_done", "sweep_done", "metrics", "metrics"]

    def test_snapshot_sources_polled(self):
        tel = Telemetry(writer=None, snapshot_every=0)
        tel.add_snapshot_source(lambda reg: reg.set_gauge("from.source", 42.0))
        snap = tel.snapshot()
        assert snap["gauges"]["from.source"] == 42.0

    def test_close_is_idempotent(self, tmp_path):
        tel = Telemetry(TelemetryWriter(tmp_path / "t.jsonl"))
        tel.event("x")
        tel.close()
        tel.close()

    def test_null_telemetry_is_inert_and_shared(self):
        assert ensure_telemetry(None) is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled
        NULL_TELEMETRY.counter("x")
        NULL_TELEMETRY.event("x", a=1)
        NULL_TELEMETRY.sweep_done(1, DummyStats())
        assert NULL_TELEMETRY.snapshot() == {}
        tel = Telemetry(writer=None)
        assert ensure_telemetry(tel) is tel
        assert isinstance(NullTelemetry(), Telemetry)

    def test_invalid_snapshot_every(self):
        with pytest.raises(ValueError):
            Telemetry(writer=None, snapshot_every=-1)


class TestProfilerExport:
    def test_phases_become_gauges(self):
        prof = PhaseProfiler()
        with prof.phase("stratification"):
            pass
        reg = MetricsRegistry()
        prof.export_to_registry(reg)
        assert reg.gauge("phase.stratification.seconds") >= 0.0
        assert reg.gauge("phase.stratification.calls") == 1.0
        assert reg.gauge("phase.total.seconds") == pytest.approx(
            prof.accounted
        )


class TestEngineWiring:
    def test_stratification_counter_and_cache_stats(self):
        tel = Telemetry(writer=None, snapshot_every=0)
        eng, rng = make_engine(telemetry=tel)
        sweep(eng, rng)
        assert tel.registry.counter("engine.stratifications") > 0
        snap = tel.snapshot()
        assert snap["gauges"]["cluster_cache.misses"] > 0
        stats = eng.cache.stats()
        assert 0.0 <= stats["cluster_cache.hit_rate"] <= 1.0


class TestWatchdog:
    def test_healthy_engine_no_alert(self):
        eng, rng = make_engine()
        sweep(eng, rng)
        wd = NumericalHealthWatchdog(eng, WatchdogConfig(check_every=1))
        report = wd.check(sweep_index=1)
        assert report.healthy
        assert not report.forced_refresh
        assert report.wrap_drift < 1e-6
        assert report.dynamic_range > 1.0

    def test_tight_tolerance_alerts_and_forces_refresh(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(TelemetryWriter(path), snapshot_every=0)
        eng, rng = make_engine(telemetry=tel)
        sweep(eng, rng)
        assert eng.cache._cache  # warm cache before the forced refresh
        wd = NumericalHealthWatchdog(
            eng, WatchdogConfig(check_every=1, drift_tol=1e-300), tel
        )
        report = wd.check(sweep_index=3)
        assert not report.healthy
        assert report.forced_refresh
        assert wd.alerts == 1 and wd.forced_refreshes == 1
        assert tel.registry.counter("health.alerts") == 1
        tel.close()
        kinds = [e["event"] for e in read_events(path)]
        # the alert must be followed by the forced refresh
        assert kinds.index("health_alert") < kinds.index("forced_refresh")

    def test_cadence(self):
        eng, _ = make_engine()
        wd = NumericalHealthWatchdog(eng, WatchdogConfig(check_every=3))
        assert wd.maybe_check(1) is None
        assert wd.maybe_check(2) is None
        assert wd.maybe_check(3) is not None
        assert len(wd.reports) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(check_every=0)
        with pytest.raises(ValueError):
            WatchdogConfig(drift_tol=0.0)
        with pytest.raises(ValueError):
            WatchdogConfig(range_tol=1.0)


class TestSimulationWiring:
    def test_run_emits_sweep_done_and_matching_counters(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(TelemetryWriter(path), snapshot_every=0)
        sim = Simulation(make_model(), seed=3, cluster_size=4, telemetry=tel)
        sim.warmup(2)
        sim.measure_sweeps(3)
        tel.close()
        events = list(read_events(path))
        sweeps = [e for e in events if e["event"] == "sweep_done"]
        assert len(sweeps) == 5
        assert [e["stage"] for e in sweeps] == ["warmup"] * 2 + ["measure"] * 3
        assert [e["sweep"] for e in sweeps] == [1, 2, 3, 4, 5]
        assert tel.registry.counter("sweep.proposed") == (
            sim.total_stats.proposed
        )
        # phase gauges present in the final snapshot
        final = [e for e in events if e["event"] == "metrics"][-1]
        assert "phase.stratification.seconds" in final["metrics"]["gauges"]

    def test_watchdog_runs_on_cadence_inside_simulation(self):
        tel = Telemetry(writer=None, snapshot_every=0)
        sim = Simulation(
            make_model(), seed=3, cluster_size=4, telemetry=tel,
            watchdog=WatchdogConfig(check_every=2, drift_tol=1e-300),
        )
        sim.warmup(4)
        assert sim.watchdog is not None
        assert len(sim.watchdog.reports) == 2
        assert sim.watchdog.forced_refreshes == 2
        assert tel.registry.counter("health.checks") == 2

    def test_telemetry_defaults_to_shared_null(self):
        sim = Simulation(make_model(), seed=3, cluster_size=4)
        assert sim.telemetry is NULL_TELEMETRY
        assert sim.watchdog is None
        sim.warmup(1)  # no telemetry machinery in the way

    def test_physics_identical_with_and_without_telemetry(self):
        a = Simulation(make_model(), seed=7, cluster_size=4)
        b = Simulation(
            make_model(), seed=7, cluster_size=4,
            telemetry=Telemetry(writer=None, snapshot_every=0),
        )
        a.warmup(2)
        b.warmup(2)
        np.testing.assert_array_equal(a.field.h, b.field.h)


class TestEnsembleWiring:
    def test_chain_events_and_merged_registry(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(TelemetryWriter(path), snapshot_every=0)
        run_ensemble(
            make_model(),
            n_chains=2,
            warmup_sweeps=1,
            measurement_sweeps=2,
            max_workers=1,
            cluster_size=4,
            telemetry=tel,
        )
        tel.close()
        events = list(read_events(path))
        kinds = [e["event"] for e in events]
        assert kinds.count("chain_done") == 2
        assert "ensemble_done" in kinds
        # merged counters cover both chains: 2 chains x 3 sweeps x L x N
        assert tel.registry.counter("sweep.proposed") == 2 * 3 * 8 * 4


class TestReport:
    def test_summarize_and_render(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(TelemetryWriter(path), snapshot_every=2)
        sim = Simulation(
            make_model(), seed=3, cluster_size=4, telemetry=tel,
            watchdog=WatchdogConfig(check_every=2, drift_tol=1e-300),
        )
        sim.warmup(1)
        sim.measure_sweeps(3)
        tel.event("checkpoint_saved", path="x.npz", measured_sweeps=3)
        tel.close()

        summary = summarize_jsonl(path)
        assert summary.sweeps == 4
        assert summary.proposed == 4 * 8 * 4
        assert summary.checkpoints == 1
        assert len(summary.alerts) == 2
        assert summary.forced_refreshes == 2
        assert summary.metrics is not None
        phases = summary.phase_seconds()
        assert "stratification" in phases and "total" not in phases

        text = render_report(summary)
        assert "HEALTH: 2 alert(s)" in text
        assert "stratification" in text
        assert "acceptance" in text

    def test_render_healthy_report(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(TelemetryWriter(path), snapshot_every=0)
        tel.sweep_done(1, DummyStats())
        tel.close()
        text = render_report(summarize_jsonl(path))
        assert "HEALTH: ok" in text


# ---------------------------------------------------------------------------
# thread-safety and pickle regressions (the QL101/QL102 findings)
# ---------------------------------------------------------------------------


class TestRegistryThreadSafety:
    """Registries are shared by `executor="thread"` chains and
    `parallel_for` bodies; a lost increment here silently skews every
    acceptance-rate and GFLOPS figure in the report."""

    def test_concurrent_increments_are_exact(self):
        import concurrent.futures as cf

        reg = MetricsRegistry()
        n_threads, n_incs = 8, 2000

        def work(_):
            for _ in range(n_incs):
                reg.inc("hits")

        with cf.ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(work, range(n_threads)))
        assert reg.counter("hits") == n_threads * n_incs

    def test_concurrent_observes_lose_no_samples(self):
        import concurrent.futures as cf

        reg = MetricsRegistry()
        n_threads, n_obs = 8, 1000

        def work(k):
            for i in range(n_obs):
                reg.observe("acc", (i % 10) / 10.0, bounds=(0.5, 1.0))

        with cf.ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(work, range(n_threads)))
        hist = reg.histograms["acc"]
        assert hist.count == n_threads * n_obs
        assert sum(hist.buckets) == n_threads * n_obs

    def test_concurrent_merge_is_exact(self):
        import concurrent.futures as cf

        chain = MetricsRegistry()
        chain.inc("n", 5.0)
        chain.observe("x", 1.0)
        merged = MetricsRegistry()

        def fold(_):
            merged.merge(chain)

        with cf.ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(fold, range(40)))
        assert merged.counter("n") == 40 * 5.0
        assert merged.histograms["x"].count == 40

    def test_registry_pickles_and_lock_is_recreated(self):
        import pickle

        reg = MetricsRegistry()
        reg.inc("n", 3.0)
        reg.observe("x", 0.5)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.counter("n") == 3.0
        assert clone.histograms["x"].count == 1
        clone.inc("n")  # the recreated lock must actually work
        assert clone.counter("n") == 4.0

    def test_histogram_pickles_and_lock_is_recreated(self):
        import pickle

        hist = StreamingHistogram(bounds=(1.0, 2.0))
        hist.observe(1.5)
        clone = pickle.loads(pickle.dumps(hist))
        assert clone.count == 1
        clone.observe(0.5)
        assert clone.count == 2


class TestWriterDurability:
    """close() promises flush+fsync whatever flush_every is — the
    campaign manifest layer treats a closed JSONL as a durable artifact."""

    def test_close_flushes_lines_buffered_by_flush_every(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = TelemetryWriter(path, flush_every=100)
        for i in range(3):
            w.write("tick", i=i)
        w.close()
        assert [e["i"] for e in read_events(path)] == [0, 1, 2]

    def test_context_exit_flushes_buffered_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path, flush_every=50) as w:
            w.write("tick", i=0)
            w.write("tick", i=1)
        assert len(list(read_events(path))) == 2

    def test_close_is_idempotent_after_buffered_writes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = TelemetryWriter(path, flush_every=10)
        w.write("tick")
        w.close()
        w.close()
        assert len(list(read_events(path))) == 1

    def test_concurrent_writes_get_unique_ordered_seqs(self, tmp_path):
        import concurrent.futures as cf

        path = tmp_path / "t.jsonl"
        w = TelemetryWriter(path, flush_every=7)
        with cf.ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(lambda i: w.write("tick", i=i), range(200)))
        w.close()
        seqs = [e["seq"] for e in read_events(path)]
        assert sorted(seqs) == list(range(200))

    def test_writer_pickles_without_handle(self, tmp_path):
        import pickle

        path = tmp_path / "t.jsonl"
        w = TelemetryWriter(path, flush_every=5)
        w.write("tick")
        clone = pickle.loads(pickle.dumps(w))
        assert clone.path == w.path
        assert clone._fh is None  # handles never cross the boundary
        w.close()


class TestEnsembleThreadDeterminism:
    """Telemetry instrumentation must not perturb the physics: a seeded
    threaded ensemble produces bit-identical observables with telemetry
    on, off, and across repeated runs."""

    KWARGS = dict(
        n_chains=2,
        warmup_sweeps=1,
        measurement_sweeps=2,
        max_workers=2,
        cluster_size=4,
        base_seed=7,
        executor="thread",
    )

    @staticmethod
    def _means(result):
        return {
            k: np.asarray(v.mean) for k, v in sorted(result.observables.items())
        }

    def test_telemetry_does_not_perturb_threaded_observables(self, tmp_path):
        tel = Telemetry(
            TelemetryWriter(tmp_path / "t.jsonl"), snapshot_every=0
        )
        with_tel = run_ensemble(make_model(), telemetry=tel, **self.KWARGS)
        tel.close()
        plain = run_ensemble(make_model(), **self.KWARGS)
        a, b = self._means(with_tel), self._means(plain)
        assert list(a) == list(b)
        for name in a:
            assert np.array_equal(a[name], b[name]), name

    def test_repeated_threaded_runs_bit_identical(self, tmp_path):
        tel1 = Telemetry(
            TelemetryWriter(tmp_path / "a.jsonl"), snapshot_every=0
        )
        tel2 = Telemetry(
            TelemetryWriter(tmp_path / "b.jsonl"), snapshot_every=0
        )
        r1 = run_ensemble(make_model(), telemetry=tel1, **self.KWARGS)
        r2 = run_ensemble(make_model(), telemetry=tel2, **self.KWARGS)
        tel1.close()
        tel2.close()
        a, b = self._means(r1), self._means(r2)
        for name in a:
            assert np.array_equal(a[name], b[name]), name
        assert tel1.registry.counter("sweep.proposed") == tel2.registry.counter(
            "sweep.proposed"
        )
