"""Unit tests for the campaign manifest journal (crash-safe state)."""

import json

import pytest

from repro.campaign import CampaignSpec, Manifest, ManifestError

BASE = {
    "nx": 2, "ny": 2, "dtau": 0.125, "l": 8, "north": 4,
    "nwarm": 2, "npass": 4,
}


def make_spec():
    return CampaignSpec(
        name="m", base=dict(BASE), grid={"u": [2.0, 4.0]}, base_seed=5,
    )


def create(tmp_path, name="c"):
    return Manifest.create(tmp_path / name, make_spec())


def nonzero(counts):
    return {k: v for k, v in counts.items() if v}


class TestLifecycle:
    def test_create_then_load_roundtrip(self, tmp_path):
        with create(tmp_path) as man:
            ids = [j.job_id for j in man.jobs]
        loaded = Manifest.load(tmp_path / "c")
        assert [j.job_id for j in loaded.jobs] == ids
        assert loaded.spec.spec_hash() == make_spec().spec_hash()
        assert all(s.status == "pending" for s in loaded.states.values())

    def test_create_refuses_existing(self, tmp_path):
        create(tmp_path).close()
        with pytest.raises(ManifestError, match="already exists"):
            create(tmp_path)

    def test_load_missing(self, tmp_path):
        with pytest.raises(ManifestError, match="no manifest"):
            Manifest.load(tmp_path / "nope")

    def test_state_transitions_and_counts(self, tmp_path):
        with create(tmp_path) as man:
            a, b = [j.job_id for j in man.jobs]
            man.mark_running(a, attempt=1)
            man.mark_done(a, summary={"ok": True})
            man.mark_running(b, attempt=1)
            man.mark_failed(b, error="boom")
            assert nonzero(man.counts()) == {"done": 1, "failed": 1}
            assert man.states[a].runs == 1
            assert man.states[b].last_error == "boom"
            assert man.complete and not man.all_done
        # and the same picture after replaying the journal
        loaded = Manifest.load(tmp_path / "c")
        assert nonzero(loaded.counts()) == {"done": 1, "failed": 1}
        assert loaded.states[a].summary == {"ok": True}

    def test_retry_counting(self, tmp_path):
        with create(tmp_path) as man:
            a = man.jobs[0].job_id
            man.mark_running(a, attempt=1)
            man.mark_running(a, attempt=2, retry=True)
            man.mark_done(a, summary={})
            assert man.states[a].runs == 2
            assert man.states[a].retries == 1
            assert man.total_retries() == 1


class TestResume:
    def test_requeue_interrupted(self, tmp_path):
        with create(tmp_path) as man:
            a, b = [j.job_id for j in man.jobs]
            man.mark_running(a, attempt=1)
            man.mark_done(a, summary={})
            man.mark_running(b, attempt=1)
            # scheduler dies here: b is stuck "running" in the journal
        loaded = Manifest.load(tmp_path / "c")
        assert loaded.states[b].status == "running"
        requeued = loaded.requeue_interrupted()
        assert requeued == [b]
        assert loaded.states[b].status == "pending"
        assert loaded.states[b].runs == 1  # the interrupted run still counts
        assert [j.job_id for j in loaded.runnable_jobs()] == [b]
        loaded.close()

    def test_runnable_jobs_retry_failed(self, tmp_path):
        with create(tmp_path) as man:
            a, b = [j.job_id for j in man.jobs]
            man.mark_running(a, attempt=1)
            man.mark_failed(a, error="x")
            assert [j.job_id for j in man.runnable_jobs()] == [b]
            retriable = man.runnable_jobs(retry_failed=True)
            assert {j.job_id for j in retriable} == {a, b}

    def test_torn_tail_is_tolerated(self, tmp_path):
        man = create(tmp_path)
        a = man.jobs[0].job_id
        man.mark_running(a, attempt=1)
        man.close()
        path = tmp_path / "c" / "manifest.jsonl"
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind":"state","id":"' + a)  # torn mid-write
        loaded = Manifest.load(tmp_path / "c")
        assert loaded.states[a].status == "running"
        loaded.close()

    def test_corrupt_interior_line_rejected(self, tmp_path):
        create(tmp_path).close()
        path = tmp_path / "c" / "manifest.jsonl"
        lines = path.read_text().splitlines()
        lines[1] = "not json at all"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ManifestError, match="corrupt"):
            Manifest.load(tmp_path / "c")

    def test_unknown_job_id_rejected(self, tmp_path):
        with create(tmp_path) as man:
            with pytest.raises(ManifestError, match="unknown job"):
                man.mark_done("feedfeedfeed", summary={})

    def test_appends_survive_reload_midstream(self, tmp_path):
        """Every append is flushed: a reader sees it immediately."""
        with create(tmp_path) as man:
            a = man.jobs[0].job_id
            man.mark_running(a, attempt=1)
            other = Manifest.load(tmp_path / "c")
            assert other.states[a].status == "running"
            other.close()


class TestJobDirs:
    def test_job_dir_layout(self, tmp_path):
        with create(tmp_path) as man:
            a = man.jobs[0].job_id
            d = man.job_dir(a)
            assert d == tmp_path / "c" / "jobs" / a
            assert d.parent.is_dir()

    def test_journal_is_jsonl(self, tmp_path):
        create(tmp_path).close()
        lines = (tmp_path / "c" / "manifest.jsonl").read_text().splitlines()
        kinds = [json.loads(ln)["kind"] for ln in lines]
        assert kinds[0] == "campaign"
        assert kinds.count("job") == 2
