"""Unit tests for column norms and pre-pivot permutations."""

import numpy as np
import pytest

from repro.linalg import (
    column_norms,
    column_norms_blocked,
    inverse_permutation,
    prepivot_permutation,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestColumnNorms:
    def test_matches_numpy(self, rng):
        a = rng.normal(size=(40, 23))
        np.testing.assert_allclose(
            column_norms(a), np.linalg.norm(a, axis=0), rtol=1e-13
        )

    def test_blocked_matches_unblocked(self, rng):
        a = rng.normal(size=(33, 50))
        for block in (1, 7, 64, 200):
            np.testing.assert_allclose(
                column_norms_blocked(a, block=block), column_norms(a), rtol=1e-13
            )

    def test_blocked_rejects_bad_block(self, rng):
        with pytest.raises(ValueError):
            column_norms_blocked(rng.normal(size=(4, 4)), block=0)

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            column_norms(np.ones(5))

    def test_zero_columns(self):
        a = np.zeros((5, 3))
        np.testing.assert_array_equal(column_norms(a), np.zeros(3))

    def test_fortran_order_input(self, rng):
        a = np.asfortranarray(rng.normal(size=(20, 20)))
        np.testing.assert_allclose(
            column_norms(a), np.linalg.norm(a, axis=0), rtol=1e-13
        )


class TestPrepivot:
    def test_sorts_descending(self, rng):
        a = rng.normal(size=(10, 10)) * np.logspace(-5, 5, 10)[None, :]
        piv = prepivot_permutation(a)
        nrm = np.linalg.norm(a[:, piv], axis=0)
        assert np.all(np.diff(nrm) <= 1e-12)

    def test_already_graded_is_identity(self, rng):
        """The property the whole pre-pivoting idea rests on: a graded
        matrix needs no interchanges at all."""
        a = rng.normal(size=(12, 12)) * np.logspace(0, -11, 12)[None, :]
        assert np.array_equal(prepivot_permutation(a), np.arange(12))

    def test_stable_under_ties(self):
        a = np.eye(6)  # all columns have norm 1
        assert np.array_equal(prepivot_permutation(a), np.arange(6))

    def test_is_permutation(self, rng):
        a = rng.normal(size=(8, 15))
        piv = prepivot_permutation(a)
        assert np.array_equal(np.sort(piv), np.arange(15))


class TestInversePermutation:
    def test_roundtrip(self, rng):
        piv = rng.permutation(20)
        inv = inverse_permutation(piv)
        assert np.array_equal(piv[inv], np.arange(20))
        assert np.array_equal(inv[piv], np.arange(20))

    def test_identity(self):
        assert np.array_equal(
            inverse_permutation(np.arange(5)), np.arange(5)
        )
