"""Unit tests for Green's function wrapping."""

import numpy as np
import pytest

from repro.core import wrap_backward, wrap_forward
from tests.helpers import relerr


class TestWrapForward:
    def test_matches_dense_similarity(self, factory4x4, field4x4, rng):
        g = rng.normal(size=(16, 16))
        b = factory4x4.b_matrix(field4x4, 3, 1)
        expected = b @ g @ np.linalg.inv(b)
        got = wrap_forward(factory4x4, field4x4, g, 3, 1)
        assert relerr(got, expected) < 1e-12

    def test_advances_the_chain(self, engine4x4):
        """Wrapping the boundary G through slice 0 must equal the
        directly stratified G at slice 0."""
        g = engine4x4.boundary_greens(1, 0)
        wrapped = wrap_forward(engine4x4.factory, engine4x4.field, g, 0, 1)
        direct = engine4x4.greens_at_slice_direct(1, 0)
        assert relerr(wrapped, direct) < 1e-10

    def test_preserves_spectrum(self, factory4x4, field4x4, rng):
        """A similarity transform cannot change eigenvalues."""
        g = rng.normal(size=(16, 16))
        wrapped = wrap_forward(factory4x4, field4x4, g, 5, -1)
        ev_before = np.sort_complex(np.linalg.eigvals(g))
        ev_after = np.sort_complex(np.linalg.eigvals(wrapped))
        np.testing.assert_allclose(ev_after, ev_before, atol=1e-8)

    def test_preserves_trace(self, factory4x4, field4x4, rng):
        g = rng.normal(size=(16, 16))
        wrapped = wrap_forward(factory4x4, field4x4, g, 2, 1)
        assert np.trace(wrapped) == pytest.approx(np.trace(g), rel=1e-10)


class TestWrapBackward:
    def test_roundtrip_is_identity(self, factory4x4, field4x4, rng):
        g = rng.normal(size=(16, 16))
        fwd = wrap_forward(factory4x4, field4x4, g, 7, 1)
        back = wrap_backward(factory4x4, field4x4, fwd, 7, 1)
        assert relerr(back, g) < 1e-12

    def test_matches_dense(self, factory4x4, field4x4, rng):
        g = rng.normal(size=(16, 16))
        b = factory4x4.b_matrix(field4x4, 1, -1)
        expected = np.linalg.inv(b) @ g @ b
        got = wrap_backward(factory4x4, field4x4, g, 1, -1)
        assert relerr(got, expected) < 1e-12


class TestDrift:
    def test_drift_small_over_cluster(self, engine4x4):
        assert engine4x4.wrap_drift(1) < 1e-9

    def test_drift_grows_with_wrap_count(self, engine4x4):
        """More wraps, more accumulated error (weak monotonicity over a
        long stretch, not wrap-to-wrap)."""
        short = engine4x4.wrap_drift(1, n_wraps=2)
        long = engine4x4.wrap_drift(1, n_wraps=20)
        assert long >= short * 0.1  # both tiny; long must not be better by magic
        assert long < 1e-6

    def test_drift_bad_count_raises(self, engine4x4):
        with pytest.raises(ValueError):
            engine4x4.wrap_drift(1, n_wraps=0)
        with pytest.raises(ValueError):
            engine4x4.wrap_drift(1, n_wraps=21)
