"""Unit tests for delayed (block) rank-1 Green's function updates."""

import numpy as np
import pytest

from repro.core import DelayedUpdater
from tests.helpers import relerr


def reference_update(g, i, alpha):
    """Direct Sherman-Morrison update of (I + B...)^{-1} after a flip at
    site i multiplying row i of the leftmost B by (1 + alpha)."""
    d = 1.0 + alpha * (1.0 - g[i, i])
    u = g[:, i].copy()
    w = -g[i, :].copy()
    w[i] += 1.0
    return g - (alpha / d) * np.outer(u, w), d


@pytest.fixture
def g0(rng):
    # a generic dense matrix playing the role of G
    return rng.normal(size=(12, 12)) * 0.3 + 0.5 * np.eye(12)


class TestSingleUpdate:
    def test_matches_reference(self, g0):
        g = g0.copy()
        upd = DelayedUpdater(g, max_delay=8)
        alpha = 0.7
        i = 3
        d = 1.0 + alpha * (1.0 - upd.diag_element(i))
        upd.accept(i, alpha, d)
        upd.flush()
        expected, _ = reference_update(g0, i, alpha)
        assert relerr(g, expected) < 1e-13

    def test_matches_brute_force_inverse(self, rng):
        """End-to-end: updating G = (I + A)^{-1} for A <- (I+alpha e_i e_i^T) A
        must equal inverting the modified matrix from scratch."""
        n = 10
        a = rng.normal(size=(n, n)) * 0.5
        g = np.linalg.inv(np.eye(n) + a)
        upd = DelayedUpdater(g, max_delay=4)
        i, alpha = 6, -0.45
        d = 1.0 + alpha * (1.0 - upd.diag_element(i))
        upd.accept(i, alpha, d)
        upd.flush()
        a2 = a.copy()
        a2[i, :] *= 1.0 + alpha
        expected = np.linalg.inv(np.eye(n) + a2)
        assert relerr(g, expected) < 1e-12


class TestDelayedSemantics:
    def test_effective_reads_before_flush(self, g0):
        g = g0.copy()
        upd = DelayedUpdater(g, max_delay=16)
        seq = [(2, 0.4), (7, -0.3), (2, 0.9)]
        ref = g0.copy()
        for i, alpha in seq:
            d_ref = 1.0 + alpha * (1.0 - ref[i, i])
            d = 1.0 + alpha * (1.0 - upd.diag_element(i))
            assert d == pytest.approx(d_ref, rel=1e-12)
            np.testing.assert_allclose(upd.column(i), ref[:, i], atol=1e-12)
            np.testing.assert_allclose(upd.row(i), ref[i, :], atol=1e-12)
            upd.accept(i, alpha, d)
            ref, _ = reference_update(ref, i, alpha)
        upd.flush()
        assert relerr(g, ref) < 1e-12

    def test_delay_one_equals_delay_many(self, g0, rng):
        seq = [(int(i), float(a)) for i, a in
               zip(rng.integers(0, 12, size=10), rng.normal(size=10) * 0.3)]

        def run(delay):
            g = g0.copy()
            upd = DelayedUpdater(g, max_delay=delay)
            for i, alpha in seq:
                d = 1.0 + alpha * (1.0 - upd.diag_element(i))
                upd.accept(i, alpha, d)
            upd.flush()
            return g

        np.testing.assert_allclose(run(1), run(32), atol=1e-11)
        np.testing.assert_allclose(run(3), run(32), atol=1e-11)

    def test_auto_flush_at_max_delay(self, g0):
        upd = DelayedUpdater(g0.copy(), max_delay=2)
        for k, i in enumerate([0, 1, 2]):
            d = 1.0 + 0.1 * (1.0 - upd.diag_element(i))
            upd.accept(i, 0.1, d)
        assert upd.flushes == 1  # flushed automatically after 2 updates
        assert upd.pending == 1

    def test_flush_empty_is_noop(self, g0):
        g = g0.copy()
        upd = DelayedUpdater(g, max_delay=4)
        upd.flush()
        assert upd.flushes == 0
        np.testing.assert_array_equal(g, g0)

    def test_dense_flushes(self, g0):
        upd = DelayedUpdater(g0.copy(), max_delay=8)
        d = 1.0 + 0.2 * (1.0 - upd.diag_element(0))
        upd.accept(0, 0.2, d)
        out = upd.dense()
        assert upd.pending == 0
        assert out is upd.g


class TestValidation:
    def test_bad_delay(self, g0):
        with pytest.raises(ValueError):
            DelayedUpdater(g0, max_delay=0)

    def test_non_square(self):
        with pytest.raises(ValueError):
            DelayedUpdater(np.ones((3, 4)))

    def test_singular_denominator(self, g0):
        upd = DelayedUpdater(g0.copy())
        with pytest.raises(ZeroDivisionError):
            upd.accept(0, 1.0, 0.0)
