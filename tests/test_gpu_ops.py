"""Unit tests for GPU clustering (Alg 4/5) and wrapping (Alg 6/7)."""

import numpy as np
import pytest

from repro.core import cluster_product, wrap_forward
from repro.gpu import GPUPropagatorOps, SimulatedDevice
from tests.helpers import relerr


@pytest.fixture
def dev():
    return SimulatedDevice()


@pytest.fixture(params=[True, False], ids=["fused", "cublas"])
def ops(request, dev, factory4x4):
    return GPUPropagatorOps(
        dev, factory4x4.expk, factory4x4.inv_expk, fused=request.param
    )


class TestClusterProduct:
    def test_matches_cpu(self, ops, factory4x4, field4x4):
        for sigma in (1, -1):
            vs = [
                field4x4.v_diagonal(l, sigma, factory4x4.nu) for l in range(10)
            ]
            gpu = ops.cluster_product(vs)
            cpu = cluster_product(factory4x4, field4x4, sigma, range(10))
            assert relerr(gpu, cpu) < 1e-12

    def test_single_matrix_cluster(self, ops, factory4x4, field4x4):
        vs = [field4x4.v_diagonal(0, 1, factory4x4.nu)]
        gpu = ops.cluster_product(vs)
        cpu = factory4x4.b_matrix(field4x4, 0, 1)
        assert relerr(gpu, cpu) < 1e-13

    def test_empty_cluster_raises(self, ops):
        with pytest.raises(ValueError):
            ops.cluster_product([])

    def test_transfer_volume(self, dev, factory4x4, field4x4):
        """Paper Sec. VI-A: one cluster rebuild moves N*L floats up and
        N^2 down (the resident exponentials move only at setup)."""
        ops = GPUPropagatorOps(dev, factory4x4.expk, factory4x4.inv_expk)
        h2d0, d2h0 = dev.h2d_bytes, dev.d2h_bytes
        k = 10
        vs = [field4x4.v_diagonal(l, 1, factory4x4.nu) for l in range(k)]
        ops.cluster_product(vs)
        n = 16
        assert dev.h2d_bytes - h2d0 == n * k * 8
        assert dev.d2h_bytes - d2h0 == n * n * 8


class TestLaunchCounts:
    def test_fused_eliminates_per_row_launches(self, dev, factory4x4, field4x4):
        """The structural claim of Algorithm 5: launches per scaling drop
        from N to 1."""
        n = 16
        k = 5
        vs = [field4x4.v_diagonal(l, 1, factory4x4.nu) for l in range(k)]

        fused = GPUPropagatorOps(dev, factory4x4.expk, factory4x4.inv_expk, fused=True)
        before = dev.kernel_launches
        fused.cluster_product(vs)
        fused_launches = dev.kernel_launches - before

        plain = GPUPropagatorOps(dev, factory4x4.expk, factory4x4.inv_expk, fused=False)
        before = dev.kernel_launches
        plain.cluster_product(vs)
        plain_launches = dev.kernel_launches - before

        # fused: k scalings + (k-1) gemms; plain spends dcopy/dgemm + N
        # dscal + dcopy on every step: k*(n+2) launches in total.
        assert fused_launches == k + (k - 1)
        assert plain_launches == k * (n + 2)
        assert fused_launches < plain_launches / 4

    def test_fused_is_faster_on_virtual_clock(self, factory4x4, field4x4):
        vs = [field4x4.v_diagonal(l, 1, factory4x4.nu) for l in range(10)]
        times = {}
        for fused in (True, False):
            dev = SimulatedDevice()
            ops = GPUPropagatorOps(
                dev, factory4x4.expk, factory4x4.inv_expk, fused=fused
            )
            t0 = dev.elapsed
            ops.cluster_product(vs)
            times[fused] = dev.elapsed - t0
        assert times[True] < times[False]


class TestWrap:
    def test_matches_cpu(self, ops, factory4x4, field4x4, engine4x4):
        g = engine4x4.boundary_greens(1, 0)
        cpu = wrap_forward(factory4x4, field4x4, g.copy(), 3, 1)
        v = field4x4.v_diagonal(3, 1, factory4x4.nu)
        gpu = ops.wrap(g.copy(), v)
        assert relerr(gpu, cpu) < 1e-12

    def test_does_not_mutate_input(self, ops, factory4x4, field4x4, rng):
        g = rng.normal(size=(16, 16))
        g0 = g.copy()
        ops.wrap(g, np.exp(rng.normal(size=16)))
        np.testing.assert_array_equal(g, g0)

    def test_transfer_volume_per_wrap(self, factory4x4, field4x4, rng):
        """One wrap moves N^2 + N floats up, N^2 down — the paper's
        reason wrapping cannot reach clustering's GPU efficiency."""
        dev = SimulatedDevice()
        ops = GPUPropagatorOps(dev, factory4x4.expk, factory4x4.inv_expk)
        h2d0, d2h0 = dev.h2d_bytes, dev.d2h_bytes
        ops.wrap(rng.normal(size=(16, 16)), np.exp(rng.normal(size=16)))
        assert dev.h2d_bytes - h2d0 == (16 * 16 + 16) * 8
        assert dev.d2h_bytes - d2h0 == 16 * 16 * 8
