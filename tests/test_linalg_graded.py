"""Unit tests for graded (UDT) decompositions and the scale splitting."""

import numpy as np
import pytest

from repro.linalg import GradedDecomposition, split_scales


@pytest.fixture
def rng():
    return np.random.default_rng(3)


def make_graded(rng, n=8, span=6):
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    d = np.logspace(span / 2, -span / 2, n) * rng.choice([-1, 1], size=n)
    t = np.triu(rng.normal(size=(n, n)))
    np.fill_diagonal(t, 1.0)
    return GradedDecomposition(q=q, d=d, t=t)


class TestGradedDecomposition:
    def test_dense_reconstruction(self, rng):
        g = make_graded(rng)
        np.testing.assert_allclose(
            g.dense(), g.q @ np.diag(g.d) @ g.t, atol=1e-12
        )

    def test_shape_validation(self, rng):
        q, _ = np.linalg.qr(rng.normal(size=(4, 4)))
        with pytest.raises(ValueError):
            GradedDecomposition(q=q, d=np.ones(3), t=np.eye(4))
        with pytest.raises(ValueError):
            GradedDecomposition(q=q, d=np.ones(4), t=np.eye(5))
        with pytest.raises(ValueError):
            GradedDecomposition(q=np.ones((4, 3)), d=np.ones(4), t=np.eye(4))

    def test_grading_ratio(self, rng):
        g = make_graded(rng, span=6)
        assert g.grading_ratio() == pytest.approx(1e6, rel=1e-9)

    def test_grading_ratio_with_zero(self, rng):
        g = make_graded(rng)
        g.d[-1] = 0.0
        assert g.grading_ratio() == np.inf

    def test_is_descending(self, rng):
        g = make_graded(rng)
        assert g.is_descending()
        g.d[0], g.d[-1] = g.d[-1], g.d[0]
        assert not g.is_descending()


class TestSplitScales:
    def test_reconstruction_identity(self, rng):
        """d must equal ds / db elementwise — the defining property."""
        d = np.concatenate([np.logspace(8, -8, 17), [-3.0, -1e-5, 1.0]])
        db, ds = split_scales(d)
        np.testing.assert_allclose(ds / db, d, rtol=1e-14)

    def test_bounded_by_one(self):
        d = np.array([1e12, -1e5, 2.0, 1.0, 0.5, -1e-9, 0.0])
        db, ds = split_scales(d)
        assert np.all(np.abs(db) <= 1.0)
        assert np.all(np.abs(ds) <= 1.0)

    def test_small_entries_untouched(self):
        d = np.array([0.5, -0.25, 1e-8])
        db, ds = split_scales(d)
        np.testing.assert_array_equal(db, np.ones(3))
        np.testing.assert_array_equal(ds, d)

    def test_large_entries_split(self):
        d = np.array([100.0, -100.0])
        db, ds = split_scales(d)
        np.testing.assert_allclose(db, [0.01, 0.01])
        np.testing.assert_allclose(ds, [1.0, -1.0])

    def test_boundary_at_one(self):
        """|d| = 1 exactly stays in the 'small' branch (<= vs >)."""
        db, ds = split_scales(np.array([1.0, -1.0]))
        np.testing.assert_array_equal(db, [1.0, 1.0])
        np.testing.assert_array_equal(ds, [1.0, -1.0])
