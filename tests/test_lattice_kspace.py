"""Unit tests for momentum-space machinery."""

import numpy as np
import pytest

from repro import SquareLattice, momentum_grid, symmetry_path
from repro.lattice import SYMMETRY_CORNERS, BrillouinZone, fourier_two_point


class TestMomentumGrid:
    def test_count_and_folding(self):
        k = momentum_grid(4, 4)
        assert k.shape == (16, 2)
        assert np.all(k > -np.pi - 1e-12) and np.all(k <= np.pi + 1e-12)

    def test_contains_high_symmetry_points(self):
        k = momentum_grid(4, 4)
        for target in [(0.0, 0.0), (np.pi, np.pi), (np.pi, 0.0)]:
            assert np.any(np.all(np.isclose(k, target), axis=1)), target

    def test_odd_lattice_excludes_pi(self):
        k = momentum_grid(5, 5)
        assert not np.any(np.isclose(k[:, 0], np.pi))

    def test_indexed_like_sites(self):
        lat = SquareLattice(6, 4)
        k = momentum_grid(6, 4)
        # site index i = nx + lx * ny must map to k = 2 pi (nx/lx, ny/ly)
        i = lat.index(2, 3)
        np.testing.assert_allclose(
            k[i],
            [2 * np.pi * 2 / 6, 2 * np.pi * 3 / 4 - 2 * np.pi],
        )


class TestGridLayout:
    def test_grid_values_axes_are_monotone(self):
        lat = SquareLattice(8, 6)
        bz = BrillouinZone(lat)
        kx, ky = bz.grid_axes()
        assert np.all(np.diff(kx) > 0) and np.all(np.diff(ky) > 0)

    def test_grid_values_consistent_with_axes(self):
        lat = SquareLattice(8, 8)
        bz = BrillouinZone(lat)
        # encode each momentum's kx in the value, check the grid agrees
        vals = bz.momenta[:, 0].copy()
        grid = bz.grid_values(vals)
        kx, ky = bz.grid_axes()
        np.testing.assert_allclose(grid[0], kx, atol=1e-12)
        vals_y = bz.momenta[:, 1].copy()
        grid_y = bz.grid_values(vals_y)
        np.testing.assert_allclose(grid_y[:, 0], ky, atol=1e-12)


class TestSymmetryPath:
    def test_path_endpoints_and_ordering(self):
        lat = SquareLattice(8, 8)
        idx, arc, kpts = symmetry_path(lat)
        assert np.allclose(kpts[0], (0.0, 0.0))
        assert np.allclose(kpts[-1], (0.0, 0.0))
        assert np.all(np.diff(arc) > 0)

    def test_path_visits_corners(self):
        lat = SquareLattice(8, 8)
        _, _, kpts = symmetry_path(lat)
        for corner in SYMMETRY_CORNERS[:-1]:
            assert np.any(np.all(np.isclose(kpts, corner), axis=1)), corner

    def test_point_count_grows_with_lattice(self):
        n8 = len(symmetry_path(SquareLattice(8, 8))[0])
        n16 = len(symmetry_path(SquareLattice(16, 16))[0])
        assert n16 > n8  # better k resolution is the paper's Fig 5 point

    def test_all_points_lie_on_allowed_momenta(self):
        lat = SquareLattice(6, 6)
        idx, _, kpts = symmetry_path(lat)
        mom = BrillouinZone(lat).momenta
        for i, k in zip(idx, kpts):
            # equal modulo a reciprocal lattice vector
            diff = (k - mom[i]) / (2 * np.pi)
            assert np.allclose(diff, np.round(diff), atol=1e-9)


class TestFourier:
    def test_delta_transforms_to_constant(self):
        lat = SquareLattice(4, 4)
        c = np.zeros(16)
        c[0] = 1.0
        ck = fourier_two_point(lat, c)
        np.testing.assert_allclose(ck, np.ones(16))

    def test_plane_wave_transforms_to_delta(self):
        lat = SquareLattice(8, 4)
        q_idx = lat.index(2, 1)
        k = momentum_grid(8, 4)[q_idx]
        disp = SquareLattice(8, 4).coord_array
        c = np.cos(disp @ k)
        ck = fourier_two_point(lat, c)
        # cos splits between +q and -q
        expected = np.zeros(32)
        expected[q_idx] = 16.0
        expected[lat.index(-2, -1)] += 16.0
        np.testing.assert_allclose(ck, expected, atol=1e-9)

    def test_sum_rule(self):
        rng = np.random.default_rng(0)
        lat = SquareLattice(4, 6)
        c = rng.normal(size=24)
        ck = fourier_two_point(lat, c)
        # k-sum of the transform returns N * c(0)
        assert ck.sum() == pytest.approx(24 * c[0])
