"""Integration tests of physics behaviour on small interacting systems."""

import numpy as np
import pytest

from repro import HubbardModel, MultilayerLattice, Simulation, SquareLattice


class TestMethodEquivalence:
    def test_prepivot_and_qrp_walk_the_same_chain(self):
        """Algorithm 3 differs from Algorithm 2 at the 1e-12 level (paper
        Fig 2), far below any Metropolis threshold: the two methods must
        produce identical accept/reject histories over whole sweeps."""
        fields = {}
        for method in ("qrp", "prepivot"):
            model = HubbardModel(
                SquareLattice(4, 4), u=6.0, beta=2.0, n_slices=20
            )
            sim = Simulation(model, seed=77, method=method, cluster_size=10)
            sim.warmup(3)
            fields[method] = sim.field.h.copy()
        assert np.array_equal(fields["qrp"], fields["prepivot"])


class TestInteractionTrends:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for u in (0.0, 4.0, 8.0):
            model = HubbardModel(
                SquareLattice(4, 4), u=u, beta=3.0, n_slices=24
            )
            sim = Simulation(model, seed=13, cluster_size=8)
            out[u] = sim.run(warmup_sweeps=10, measurement_sweeps=40)
        return out

    def test_double_occupancy_decreases_with_u(self, results):
        docc = [results[u].observables["double_occupancy"].scalar for u in (0, 4, 8)]
        assert docc[0] > docc[1] > docc[2]

    def test_local_moment_increases_with_u(self, results):
        moments = [
            float(np.asarray(results[u].observables["spin_zz"].mean)[0])
            for u in (0, 4, 8)
        ]
        assert moments[0] < moments[1] < moments[2]

    def test_af_structure_factor_enhanced_by_u(self, results):
        s0 = results[0.0].observables["af_structure_factor"].scalar
        s8 = results[8.0].observables["af_structure_factor"].scalar
        assert s8 > 1.5 * s0

    def test_all_runs_sign_free(self, results):
        for res in results.values():
            assert res.mean_sign == pytest.approx(1.0)


class TestMomentumDistributionShape:
    def test_fermi_surface_ordering_with_interaction(self):
        """At U = 2 the momentum distribution still shows a sharp Fermi
        surface: n(0,0) near 1, n(pi,pi) near 0, n on the FS ~ 0.5
        (paper Fig 5's structure, at bench scale)."""
        lat = SquareLattice(4, 4)
        model = HubbardModel(lat, u=2.0, beta=3.0, n_slices=24)
        res = Simulation(model, seed=4, cluster_size=8).run(10, 40)
        nk = np.asarray(res.observables["momentum_distribution"].mean)
        assert nk[lat.index(0, 0)] > 0.85
        assert nk[lat.index(2, 2)] < 0.15
        fs = nk[lat.index(2, 0)]  # (pi, 0) is on the U=0 Fermi surface
        assert 0.3 < fs < 0.7

    def test_ksum_rule_interacting(self):
        lat = SquareLattice(4, 4)
        model = HubbardModel(lat, u=4.0, beta=2.0, n_slices=16)
        res = Simulation(model, seed=5, cluster_size=8).run(5, 20)
        nk = np.asarray(res.observables["momentum_distribution"].mean)
        dens = res.observables["density"].scalar
        assert nk.mean() == pytest.approx(dens / 2.0, abs=1e-6)


class TestMultilayer:
    def test_bilayer_simulation_runs(self):
        """The interface geometry — the paper's motivating use case —
        must run end to end with sane output."""
        model = HubbardModel(
            MultilayerLattice(2, 2, 2), u=4.0, t_perp=0.8,
            beta=1.5, n_slices=12,
        )
        res = Simulation(model, seed=6, cluster_size=4).run(5, 15)
        assert res.observables["density"].scalar == pytest.approx(1.0, abs=1e-9)
        assert res.observables["kinetic_energy"].scalar < 0
        assert res.sweep_stats.acceptance_rate > 0.1

    def test_decoupled_layers_match_single_layer(self):
        """t_perp = 0 bilayer = two independent planes: densities and
        double occupancy agree with the single-layer run within errors."""
        single = Simulation(
            HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.5, n_slices=12),
            seed=7, cluster_size=4,
        ).run(10, 60)
        bilayer = Simulation(
            HubbardModel(
                MultilayerLattice(2, 2, 2), u=4.0, t_perp=0.0,
                beta=1.5, n_slices=12,
            ),
            seed=8, cluster_size=4,
        ).run(10, 60)
        d1 = single.observables["double_occupancy"]
        d2 = bilayer.observables["double_occupancy"]
        err = np.hypot(float(d1.error), float(d2.error))
        assert abs(d1.scalar - d2.scalar) < 5 * err
