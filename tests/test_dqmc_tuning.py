"""Unit tests for chemical-potential calibration."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import HubbardModel, SquareLattice
from repro.dqmc import CalibrationError, SignProblemError, calibrate_mu
from repro.dqmc import tuning as tuning_mod
from repro.hamiltonian import free_greens_function
from repro.measure import total_density


def free_model(beta=4.0):
    return HubbardModel(SquareLattice(4, 4), u=0.0, beta=beta, n_slices=32)


class TestFreeCalibration:
    """U = 0 calibrations are exact (no Monte Carlo), so tight checks."""

    @pytest.mark.parametrize("target", [0.5, 0.8, 1.0, 1.3])
    def test_hits_target(self, target):
        cal = calibrate_mu(free_model(), target, tol=0.002)
        assert cal.density == pytest.approx(target, abs=0.002)
        # verify independently at the returned mu
        m = free_model().with_(mu=cal.mu)
        g = free_greens_function(m.kinetic_matrix(), m.beta)
        assert total_density(g, g) == pytest.approx(cal.density, abs=1e-10)

    def test_half_filling_gives_mu_zero(self):
        cal = calibrate_mu(free_model(), 1.0, tol=1e-4)
        assert cal.mu == pytest.approx(0.0, abs=0.05)

    def test_history_recorded(self):
        cal = calibrate_mu(free_model(), 0.7, tol=0.01)
        assert len(cal.history) == cal.n_runs
        assert all(len(h) == 3 for h in cal.history)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_mu(free_model(), 0.0)
        with pytest.raises(ValueError):
            calibrate_mu(free_model(), 2.5)
        with pytest.raises(ValueError):
            calibrate_mu(free_model(), 1.0, mu_range=(2.0, -2.0))

    def test_bad_bracket_detected(self):
        with pytest.raises(ValueError, match="bracket"):
            calibrate_mu(free_model(), 1.8, mu_range=(-0.5, 0.5))


class TestSignGuard:
    """A collapsed <sign> must be a loud error, not a silent bias."""

    def test_density_at_raises_on_collapsed_sign(self, monkeypatch):
        class _CollapsedSim:
            def __init__(self, model, **kwargs):
                pass

            def run(self, warmup_sweeps, measurement_sweeps):
                return SimpleNamespace(
                    observables={"density": SimpleNamespace(scalar=0.42)},
                    mean_sign=1e-5,
                )

        monkeypatch.setattr(tuning_mod, "Simulation", _CollapsedSim)
        model = HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.5, n_slices=12)
        with pytest.raises(SignProblemError, match="sign problem") as ei:
            tuning_mod._density_at(model, mu=-3.0, sweeps=10, seed=0)
        assert ei.value.mu == pytest.approx(-3.0)
        assert ei.value.mean_sign == pytest.approx(1e-5)

    def test_calibrate_mu_attaches_history(self, monkeypatch):
        def fake_density_at(model, mu, sweeps, seed):
            if mu > 1.0:
                raise SignProblemError(mu=mu, mean_sign=4e-4)
            return 1.0 + 0.3 * mu, 0.9

        monkeypatch.setattr(tuning_mod, "_density_at", fake_density_at)
        with pytest.raises(SignProblemError) as ei:
            calibrate_mu(free_model(), 0.8, mu_range=(-2.0, 2.0))
        # the run at the lower bracket edge completed before the crash
        # at the upper edge, and rides along on the exception
        assert ei.value.mu == pytest.approx(2.0)
        assert len(ei.value.history) == 1
        mu0, d0, s0 = ei.value.history[0]
        assert mu0 == pytest.approx(-2.0)
        assert d0 == pytest.approx(0.4)


class TestClusterChoice:
    """_cluster_for must never degrade to k = 1 on awkward slice counts."""

    def test_prime_slice_count_uses_whole_chain(self):
        model = HubbardModel(SquareLattice(2, 2), u=2.0, beta=1.3, n_slices=13)
        assert tuning_mod._cluster_for(model) == 13  # not 1

    def test_composite_counts_pick_divisor_near_target(self):
        m12 = HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.5, n_slices=12)
        assert tuning_mod._cluster_for(m12) == 6
        m32 = free_model()
        assert tuning_mod._cluster_for(m32) == 8

    def test_never_one_when_alternatives_exist(self):
        for n_slices in (6, 10, 14, 16, 20, 24, 40):
            model = HubbardModel(
                SquareLattice(2, 2), u=2.0, beta=n_slices * 0.1,
                n_slices=n_slices,
            )
            assert tuning_mod._cluster_for(model) > 1


class TestNonConvergence:
    def test_calibration_error_carries_state(self):
        with pytest.raises(CalibrationError) as ei:
            calibrate_mu(free_model(), 0.7, tol=1e-12, max_runs=4)
        exc = ei.value
        assert len(exc.history) == 4
        lo, hi = exc.bracket
        assert -6.0 <= lo < hi <= 6.0
        assert exc.best is not None
        # best really is the closest-to-target run performed
        best_miss = min(abs(d - 0.7) for _, d, _ in exc.history)
        assert abs(exc.best.density - 0.7) == pytest.approx(best_miss)

    def test_resume_from_bracket_converges(self):
        with pytest.raises(CalibrationError) as ei:
            calibrate_mu(free_model(), 0.7, tol=1e-12, max_runs=4)
        cal = calibrate_mu(
            free_model(), 0.7, mu_range=ei.value.bracket, tol=0.01
        )
        assert cal.density == pytest.approx(0.7, abs=0.01)


class TestInteractingCalibration:
    def test_converges_with_mc_noise(self):
        """Interacting, doped calibration on a tiny system: density must
        land within tolerance (sign problem mild at these parameters)."""
        model = HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.5, n_slices=12)
        cal = calibrate_mu(
            model, 0.75, mu_range=(-4.0, 0.0), tol=0.05,
            sweeps=60, seed=1,
        )
        assert cal.density == pytest.approx(0.75, abs=0.05)
        assert cal.mu < 0  # hole doping needs negative mu
        assert abs(cal.mean_sign) > 0.3  # reported and usable
