"""Unit tests for chemical-potential calibration."""

import numpy as np
import pytest

from repro import HubbardModel, SquareLattice
from repro.dqmc import calibrate_mu
from repro.hamiltonian import free_greens_function
from repro.measure import total_density


def free_model(beta=4.0):
    return HubbardModel(SquareLattice(4, 4), u=0.0, beta=beta, n_slices=32)


class TestFreeCalibration:
    """U = 0 calibrations are exact (no Monte Carlo), so tight checks."""

    @pytest.mark.parametrize("target", [0.5, 0.8, 1.0, 1.3])
    def test_hits_target(self, target):
        cal = calibrate_mu(free_model(), target, tol=0.002)
        assert cal.density == pytest.approx(target, abs=0.002)
        # verify independently at the returned mu
        m = free_model().with_(mu=cal.mu)
        g = free_greens_function(m.kinetic_matrix(), m.beta)
        assert total_density(g, g) == pytest.approx(cal.density, abs=1e-10)

    def test_half_filling_gives_mu_zero(self):
        cal = calibrate_mu(free_model(), 1.0, tol=1e-4)
        assert cal.mu == pytest.approx(0.0, abs=0.05)

    def test_history_recorded(self):
        cal = calibrate_mu(free_model(), 0.7, tol=0.01)
        assert len(cal.history) == cal.n_runs
        assert all(len(h) == 3 for h in cal.history)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_mu(free_model(), 0.0)
        with pytest.raises(ValueError):
            calibrate_mu(free_model(), 2.5)
        with pytest.raises(ValueError):
            calibrate_mu(free_model(), 1.0, mu_range=(2.0, -2.0))

    def test_bad_bracket_detected(self):
        with pytest.raises(ValueError, match="bracket"):
            calibrate_mu(free_model(), 1.8, mu_range=(-0.5, 0.5))


class TestInteractingCalibration:
    def test_converges_with_mc_noise(self):
        """Interacting, doped calibration on a tiny system: density must
        land within tolerance (sign problem mild at these parameters)."""
        model = HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.5, n_slices=12)
        cal = calibrate_mu(
            model, 0.75, mu_range=(-4.0, 0.0), tol=0.05,
            sweeps=60, seed=1,
        )
        assert cal.density == pytest.approx(0.75, abs=0.05)
        assert cal.mu < 0  # hole doping needs negative mu
        assert abs(cal.mean_sign) > 0.3  # reported and usable
