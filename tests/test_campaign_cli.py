"""End-to-end tests for the ``repro campaign`` CLI surface.

Everything runs through ``main(argv)`` in-process on the thread
executor (process isolation has its own suite) so the CLI paths stay
fast enough for tier-1.
"""

import json

import pytest

from repro.cli import main

BASE = {
    "nx": 2, "ny": 2, "dtau": 0.125, "l": 8, "north": 4,
    "nwarm": 2, "npass": 4,
}


def write_spec(tmp_path, **overrides):
    spec = {
        "name": "cli",
        "base": dict(BASE),
        "grid": {"u": [2.0, 4.0]},
        "base_seed": 17,
        "checkpoint_every": 2,
    }
    spec.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return path


def run_cli(*argv):
    return main([str(a) for a in argv])


class TestRun:
    def test_run_creates_catalog(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        cdir = tmp_path / "camp"
        rc = run_cli(
            "campaign", "run", spec, "--dir", cdir, "--executor", "thread"
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 done" in out
        assert (cdir / "manifest.jsonl").exists()
        assert (cdir / "catalog.json").exists()
        assert len(list((cdir / "jobs").glob("*/results.npz"))) == 2

    def test_run_with_fault_retries_and_telemetry(self, tmp_path):
        spec = write_spec(tmp_path)
        cdir = tmp_path / "camp"
        tele = tmp_path / "tel.jsonl"
        rc = run_cli(
            "campaign", "run", spec, "--dir", cdir,
            "--executor", "thread", "--quiet",
            "--telemetry", tele,
            "--fault",
            '{"kill_job": 0, "on_attempt": 1, "mode": "exception"}',
        )
        assert rc == 0
        kinds = [
            json.loads(line)["event"]
            for line in tele.read_text().splitlines()
            if line.strip()
        ]
        assert "campaign_started" in kinds
        assert "job_retry" in kinds
        assert "campaign_done" in kinds

    def test_run_refuses_existing_dir(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        cdir = tmp_path / "camp"
        assert run_cli(
            "campaign", "run", spec, "--dir", cdir, "--executor", "thread",
            "--quiet",
        ) == 0
        rc = run_cli(
            "campaign", "run", spec, "--dir", cdir, "--executor", "thread",
            "--quiet",
        )
        assert rc == 2
        assert "already exists" in capsys.readouterr().err

    def test_run_bad_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"grid": {"temperature": [1.0]}}')
        rc = run_cli(
            "campaign", "run", bad, "--dir", tmp_path / "camp",
            "--executor", "thread", "--quiet",
        )
        assert rc == 2
        assert "temperature" in capsys.readouterr().err

    def test_run_exhausted_retries_exit_1(self, tmp_path, capsys):
        """A campaign that completes with failed jobs exits 1, not 2."""
        spec = write_spec(tmp_path)
        rc = run_cli(
            "campaign", "run", spec, "--dir", tmp_path / "camp",
            "--executor", "thread", "--quiet", "--max-attempts", "2",
            "--fault",
            '{"kill_job": 0, "on_attempt": 0, "mode": "exception"}',
        )
        assert rc == 1


class TestStatusAndReport:
    def test_status_renders_table(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        cdir = tmp_path / "camp"
        run_cli(
            "campaign", "run", spec, "--dir", cdir, "--executor", "thread",
            "--quiet",
        )
        capsys.readouterr()
        assert run_cli("campaign", "status", cdir) == 0
        out = capsys.readouterr().out
        assert "campaign   cli" in out
        assert "2 done" in out
        assert "u=2.0" in out and "u=4.0" in out

    def test_report_writes_json(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        cdir = tmp_path / "camp"
        run_cli(
            "campaign", "run", spec, "--dir", cdir, "--executor", "thread",
            "--quiet",
        )
        dest = tmp_path / "report.json"
        assert run_cli("campaign", "report", cdir, "--json", dest) == 0
        report = json.loads(dest.read_text())
        assert report["all_done"] is True
        assert report["n_jobs"] == 2
        assert {j["status"] for j in report["jobs"]} == {"done"}

    def test_status_missing_dir_exits_2(self, tmp_path, capsys):
        rc = run_cli("campaign", "status", tmp_path / "nope")
        assert rc == 2
        assert "no manifest" in capsys.readouterr().err


class TestResume:
    def test_resume_completed_campaign_is_noop(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        cdir = tmp_path / "camp"
        run_cli(
            "campaign", "run", spec, "--dir", cdir, "--executor", "thread",
            "--quiet",
        )
        rc = run_cli(
            "campaign", "resume", cdir, "--executor", "thread", "--quiet"
        )
        assert rc == 0
        report_rc = run_cli("campaign", "report", cdir)
        assert report_rc == 0
        out = capsys.readouterr().out
        assert "2 runs, 0 retries" in out  # nothing was re-run

    def test_resume_retry_failed(self, tmp_path):
        spec = write_spec(tmp_path)
        cdir = tmp_path / "camp"
        rc = run_cli(
            "campaign", "run", spec, "--dir", cdir, "--executor", "thread",
            "--quiet", "--max-attempts", "1",
            "--fault",
            '{"kill_job": 1, "on_attempt": 0, "mode": "exception"}',
        )
        assert rc == 1  # one job exhausted its (single) attempt
        rc = run_cli(
            "campaign", "resume", cdir, "--executor", "thread", "--quiet",
            "--retry-failed",
        )
        assert rc == 0  # fault gone, the failed job completes
