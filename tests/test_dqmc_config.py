"""Unit tests for QUEST-style input files."""

import pytest

from repro import SimulationConfig, load_config
from repro.dqmc import parse_config
from repro.lattice import MultilayerLattice, SquareLattice

EXAMPLE = """
# an 8x8 plane at U = 2
nx   = 8
ny   = 8
u    = 2.0
mu   = 0.0
dtau = 0.125
l    = 40
nwarm = 10
npass = 20
seed  = 7
method = qrp
north  = 10
"""


class TestParsing:
    def test_example_roundtrip(self):
        cfg = parse_config(EXAMPLE)
        assert cfg.nx == 8 and cfg.u == 2.0 and cfg.l == 40
        assert cfg.method == "qrp"
        cfg2 = parse_config(cfg.dumps())
        assert cfg2 == cfg

    def test_comments_and_blank_lines(self):
        cfg = parse_config("# only a comment\n\nnx = 3 # trailing\n")
        assert cfg.nx == 3

    def test_defaults(self):
        cfg = parse_config("")
        assert cfg == SimulationConfig()

    def test_beta_derived(self):
        cfg = parse_config("dtau = 0.2\nl = 40\nnorth = 10\n")
        assert cfg.beta == pytest.approx(8.0)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            parse_config("nz = 4\n")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_config("nx = eight\n")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            parse_config("just some words\n")

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            parse_config("method = lu\n")

    def test_indivisible_cluster_rejected(self):
        with pytest.raises(ValueError, match="must divide"):
            parse_config("l = 32\nnorth = 10\n")

    def test_case_insensitive_keys(self):
        cfg = parse_config("NX = 5\nU = 3.5\nL = 20\nNORTH = 10\n")
        assert cfg.nx == 5 and cfg.u == 3.5


class TestModelConstruction:
    def test_square_lattice(self):
        cfg = parse_config("nx = 4\nny = 6\n")
        model = cfg.model()
        assert isinstance(model.lattice, SquareLattice)
        assert model.lattice.shape == (4, 6)

    def test_multilayer(self):
        cfg = parse_config("nx = 4\nny = 4\nnlayers = 3\ntperp = 0.5\n")
        model = cfg.model()
        assert isinstance(model.lattice, MultilayerLattice)
        assert model.lattice.n_layers == 3
        assert model.t_perp == 0.5

    def test_simulation_construction_and_run(self):
        cfg = parse_config(
            "nx = 2\nny = 2\nl = 8\nnorth = 4\nu = 4.0\ndtau = 0.125\nseed = 1\n"
        )
        sim = cfg.simulation()
        res = sim.run(warmup_sweeps=1, measurement_sweeps=2)
        assert "density" in res.observables


class TestLoadConfig:
    def test_from_file(self, tmp_path):
        p = tmp_path / "run.in"
        p.write_text(EXAMPLE)
        cfg = load_config(p)
        assert cfg.nx == 8
