"""Unit tests for equal-time observables."""

import numpy as np
import pytest

from repro import HubbardModel, MultilayerLattice, SquareLattice
from repro.hamiltonian import free_greens_function
from repro.measure import (
    density_per_spin,
    double_occupancy,
    greens_displacement_average,
    kinetic_energy,
    total_density,
)


@pytest.fixture
def free_g():
    lat = SquareLattice(4, 4)
    model = HubbardModel(lat, u=0.0, beta=5.0)
    return lat, free_greens_function(model.kinetic_matrix(), 5.0)


class TestDensity:
    def test_half_filling(self, free_g):
        lat, g = free_g
        assert total_density(g, g) == pytest.approx(1.0, abs=1e-12)

    def test_density_per_spin_definition(self, free_g):
        _, g = free_g
        np.testing.assert_allclose(density_per_spin(g), 1.0 - np.diag(g))

    def test_empty_and_full_bands(self):
        n = 6
        g_empty = np.eye(n)  # <c c+> = 1: no electrons
        g_full = np.zeros((n, n))  # <c c+> = 0: band full
        assert total_density(g_empty, g_empty) == 0.0
        assert total_density(g_full, g_full) == 2.0

    def test_mu_shifts_density_monotonically(self):
        lat = SquareLattice(4, 4)
        dens = []
        for mu in (-1.0, 0.0, 1.0):
            model = HubbardModel(lat, u=0.0, beta=4.0, mu=mu)
            g = free_greens_function(model.kinetic_matrix(), 4.0)
            dens.append(total_density(g, g))
        assert dens[0] < dens[1] < dens[2]


class TestDoubleOccupancy:
    def test_uncorrelated_value(self, free_g):
        _, g = free_g
        # At U = 0, <n+ n-> = <n+><n-> = 1/4 at half filling.
        assert double_occupancy(g, g) == pytest.approx(0.25, abs=1e-12)

    def test_spin_asymmetric(self):
        n = 4
        g_up = np.eye(n) * 0.25  # n_up = 0.75
        g_dn = np.eye(n) * 0.75  # n_dn = 0.25
        assert double_occupancy(g_up, g_dn) == pytest.approx(0.75 * 0.25)


class TestKineticEnergy:
    def test_free_value_matches_spectral_sum(self, free_g):
        """<H_T>/N from the Green's function must equal the spectral
        formula sum_k eps_k f(eps_k) for the free system."""
        lat, g = free_g
        model = HubbardModel(lat, u=0.0, beta=5.0)
        w = np.linalg.eigvalsh(model.kinetic_matrix())
        occ = 1.0 / (1.0 + np.exp(5.0 * w))
        expected = 2.0 * np.sum(w * occ) / lat.n_sites  # 2 spins
        got = kinetic_energy(lat, g, g)
        assert got == pytest.approx(expected, abs=1e-10)

    def test_zero_for_diagonal_g(self):
        lat = SquareLattice(3, 3)
        g = np.eye(9) * 0.5
        assert kinetic_energy(lat, g, g) == 0.0

    def test_multilayer_tperp_weighting(self):
        lat = MultilayerLattice(2, 2, 2)
        rng = np.random.default_rng(0)
        g = rng.normal(size=(8, 8))
        full = kinetic_energy(lat, g, g, t=1.0, t_perp=1.0)
        no_perp = kinetic_energy(lat, g, g, t=1.0, t_perp=0.0)
        perp_only = kinetic_energy(lat, g, g, t=0.0, t_perp=1.0)
        assert full == pytest.approx(no_perp + perp_only)


class TestDisplacementAverage:
    def test_zero_displacement_is_diag_mean(self, free_g):
        lat, g = free_g
        avg = greens_displacement_average(lat, g)
        assert avg[0] == pytest.approx(np.mean(np.diag(g)))

    def test_translation_invariant_input(self, free_g):
        """The free G is translation invariant, so the average must equal
        any single row's displacement profile."""
        lat, g = free_g
        avg = greens_displacement_average(lat, g)
        row0 = np.array([g[0, lat.index(*lat.coords(r))] for r in range(16)])
        np.testing.assert_allclose(avg, row0, atol=1e-10)

    def test_transpose_flag(self, free_g):
        lat, g = free_g
        a = greens_displacement_average(lat, g, transpose=False)
        b = greens_displacement_average(lat, g, transpose=True)
        # free G is symmetric, so both agree there
        np.testing.assert_allclose(a, b, atol=1e-10)
        # an asymmetric matrix must distinguish them
        m = np.zeros((16, 16))
        m[0, 1] = 1.0
        a2 = greens_displacement_average(lat, m)
        b2 = greens_displacement_average(lat, m, transpose=True)
        assert not np.allclose(a2, b2)
