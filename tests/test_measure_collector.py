"""Unit tests for the measurement collector."""

import numpy as np
import pytest

from repro import HubbardModel, MultilayerLattice, SquareLattice
from repro.hamiltonian import free_greens_function
from repro.measure import MeasurementCollector


@pytest.fixture
def square_g():
    lat = SquareLattice(4, 4)
    model = HubbardModel(lat, u=0.0, beta=2.0)
    g = free_greens_function(model.kinetic_matrix(), 2.0)
    return lat, g


class TestCollection:
    def test_scalar_set_always_present(self, square_g):
        lat, g = square_g
        c = MeasurementCollector(lat)
        c.measure(g, g)
        names = set(c.accumulator.names())
        assert {"sign", "density", "double_occupancy", "kinetic_energy"} <= names

    def test_array_set_for_square_lattice(self, square_g):
        lat, g = square_g
        c = MeasurementCollector(lat)
        c.measure(g, g)
        names = set(c.accumulator.names())
        assert {"momentum_distribution", "spin_zz", "charge_nn",
                "swave_pairing", "af_structure_factor"} <= names

    def test_odd_lattice_drops_af_factor_only(self):
        lat = SquareLattice(3, 3)
        model = HubbardModel(lat, u=0.0, beta=2.0)
        g = free_greens_function(model.kinetic_matrix(), 2.0)
        c = MeasurementCollector(lat)
        c.measure(g, g)
        names = set(c.accumulator.names())
        assert "af_structure_factor" not in names
        assert "spin_zz" in names

    def test_with_arrays_false(self, square_g):
        lat, g = square_g
        c = MeasurementCollector(lat, with_arrays=False)
        c.measure(g, g)
        assert "momentum_distribution" not in c.accumulator.names()

    def test_multilayer_scalars_only(self):
        lat = MultilayerLattice(2, 2, 2)
        model = HubbardModel(lat, u=0.0, beta=1.0)
        g = free_greens_function(model.kinetic_matrix(), 1.0)
        c = MeasurementCollector(lat)
        c.measure(g, g)
        names = set(c.accumulator.names())
        assert "momentum_distribution" not in names
        assert "kinetic_energy" in names

    def test_sign_weighting(self, square_g):
        """Observables are recorded sign-weighted: with sign = -1 the
        stored density sample flips sign while 'sign' records -1."""
        lat, g = square_g
        c = MeasurementCollector(lat)
        c.measure(g, g, sign=1.0)
        c.measure(g, g, sign=-1.0)
        dens = c.accumulator.series("density")
        assert dens[0] == pytest.approx(-dens[1])
        np.testing.assert_array_equal(c.accumulator.series("sign"), [1, -1])

    def test_n_measurements(self, square_g):
        lat, g = square_g
        c = MeasurementCollector(lat)
        assert c.n_measurements == 0
        c.measure(g, g)
        c.measure(g, g)
        assert c.n_measurements == 2

    def test_results_reduce(self, square_g):
        lat, g = square_g
        c = MeasurementCollector(lat)
        for _ in range(8):
            c.measure(g, g)
        out = c.results(n_bins=4)
        assert out["density"].n_samples == 8
        # identical samples -> zero error
        assert float(out["density"].error) == 0.0

    def test_tperp_forwarded(self):
        lat = MultilayerLattice(2, 2, 2)
        # coupled layers so G carries interlayer coherence the two
        # collector weightings can disagree about
        model = HubbardModel(lat, u=0.0, beta=1.0, t_perp=1.0)
        g = free_greens_function(model.kinetic_matrix(), 1.0)
        c_on = MeasurementCollector(lat, t_perp=1.0)
        c_off = MeasurementCollector(lat, t_perp=0.0)
        c_on.measure(g, g)
        c_off.measure(g, g)
        ke_on = c_on.accumulator.series("kinetic_energy")[0]
        ke_off = c_off.accumulator.series("kinetic_energy")[0]
        assert ke_on != ke_off
