"""Unit tests for the checkerboard kinetic propagator."""

from collections import Counter

import numpy as np
import pytest

from repro import HubbardModel, SquareLattice
from repro.hamiltonian import CheckerboardPropagator, bond_groups
from repro.hamiltonian.kinetic import KineticPropagator


class TestBondGroups:
    @pytest.mark.parametrize(
        "shape", [(4, 4), (6, 4), (5, 5), (2, 2), (3, 1), (2, 1), (8, 6)]
    )
    def test_exact_cover_no_overlap(self, shape):
        """Every bond in exactly one group; no site twice per group."""
        lat = SquareLattice(*shape)
        counter = Counter()
        for group in bond_groups(lat):
            sites = [s for bond in group for s in bond]
            assert len(sites) == len(set(sites)), (shape, "overlap")
            for i, j in group:
                counter[frozenset((i, j))] += 1
        adj = lat.adjacency
        n = lat.n_sites
        unique_bonds = sum(
            1 for i in range(n) for j in range(i + 1, n) if adj[i, j] > 0
        )
        assert len(counter) == unique_bonds
        assert all(v == 1 for v in counter.values())

    def test_group_count_even_lattice(self):
        assert len(bond_groups(SquareLattice(4, 4))) == 4

    def test_group_count_odd_lattice(self):
        # odd extents add one wrap group per direction
        assert len(bond_groups(SquareLattice(5, 5))) == 6

    def test_single_row_lattice(self):
        groups = bond_groups(SquareLattice(4, 1))
        # 1D ring: even, odd (with wrap) — y contributes nothing
        assert len(groups) == 2


class TestPropagator:
    def test_orthogonal_like_structure(self):
        """Each group factor is symmetric positive definite, so the whole
        product is nonsingular with positive determinant."""
        cb = CheckerboardPropagator(SquareLattice(4, 4), t=1.0, dtau=0.1)
        b = cb.dense()
        sign, _ = np.linalg.slogdet(b)
        assert sign == 1.0

    def test_apply_matches_dense(self):
        rng = np.random.default_rng(0)
        cb = CheckerboardPropagator(SquareLattice(4, 4), t=1.3, dtau=0.15)
        a = rng.normal(size=(16, 5))
        np.testing.assert_allclose(
            cb.apply_left(a), cb.dense() @ a, atol=1e-12
        )

    def test_mu_factor(self):
        cb0 = CheckerboardPropagator(SquareLattice(2, 2), t=1.0, dtau=0.1)
        cb1 = CheckerboardPropagator(SquareLattice(2, 2), t=1.0, dtau=0.1, mu=0.5)
        np.testing.assert_allclose(
            cb1.dense(), np.exp(0.05) * cb0.dense(), atol=1e-13
        )

    def test_error_small_and_quadratic_in_dtau(self):
        """Splitting error ~ O(dtau^2) on a lattice where the groups do
        not commute (6x4; note 4-extent rings have commuting even/odd
        groups, an amusing special case covered below)."""
        lat = SquareLattice(6, 4)
        errs = [
            CheckerboardPropagator(lat, 1.0, d).splitting_error()
            for d in (0.2, 0.1, 0.05)
        ]
        assert errs[0] < 0.05
        assert errs[0] / errs[1] > 3.0
        assert errs[1] / errs[2] > 3.0

    def test_four_ring_groups_commute(self):
        """On extent-4 rings the even/odd bond Hamiltonians commute, so
        the checkerboard split is *exact* — a structural coincidence
        worth pinning down so nobody "fixes" it."""
        err = CheckerboardPropagator(SquareLattice(4, 4), 1.0, 0.2).splitting_error()
        assert err < 1e-12

    def test_agrees_with_exact_propagator_action(self):
        """Sanity on physics: acting on the ground-state-like vector the
        checkerboard and exact propagators agree to the splitting error."""
        lat = SquareLattice(6, 6)
        model = HubbardModel(lat, u=0.0, beta=1.0, n_slices=10)
        exact = KineticPropagator(model.kinetic_matrix(), model.dtau).expk
        cb = CheckerboardPropagator(lat, 1.0, model.dtau)
        v = np.ones((36, 1)) / 6.0
        err = np.linalg.norm(cb.apply_left(v) - exact @ v)
        assert err < 1e-3
