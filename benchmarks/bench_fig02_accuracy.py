"""Figure 2: distribution of ||G2 - G3||_F / ||G2||_F across U.

The paper samples 1000 Green's function evaluations from full DQMC runs
on a 16x16 lattice with L = 160 (beta = 32) and shows box-and-whisker
statistics of the relative difference between Algorithm 2 (QRP) and
Algorithm 3 (pre-pivoted) for U = 2..8 — all below ~1e-10, independent
of U.

Bench scale: 6x6 lattice, L = 40 (beta = 5), ~40 evaluations per U drawn
from a short sampling run. The claim asserted is the paper's: the
*entire* distribution sits at stratification-roundoff level (< 1e-9) for
every U.
"""

import numpy as np
import pytest

from bench_common import format_table, make_field_engine
from repro.core import GreensFunctionEngine, stratified_inverse
from repro.dqmc import sweep

US = [2.0, 4.0, 6.0, 8.0]
N_EVALS = 40


def _differences_for_u(u: float, n_evals: int) -> np.ndarray:
    factory, field, engine = make_field_engine(
        6, 6, u=u, n_slices=40, cluster=10, seed=int(u)
    )
    rng = np.random.default_rng(100 + int(u))
    diffs = []
    while len(diffs) < n_evals:
        sweep(engine, rng)  # decorrelate the field
        for c in range(engine.n_clusters):
            chain = engine.cache.chain(1, c)
            g2 = stratified_inverse(chain, method="qrp")
            g3 = stratified_inverse(chain, method="prepivot")
            diffs.append(
                np.linalg.norm(g2 - g3) / np.linalg.norm(g2)
            )
            if len(diffs) >= n_evals:
                break
    return np.asarray(diffs)


def _quartiles(x: np.ndarray):
    return (
        x.min(),
        *np.percentile(x, [25, 50, 75]),
        x.max(),
    )


def test_fig2_accuracy_distribution(benchmark, report):
    rows = []
    maxima = {}
    for u in US:
        diffs = _differences_for_u(u, N_EVALS)
        q = _quartiles(diffs)
        maxima[u] = q[-1]
        rows.append(
            [f"U={u:g}"] + [f"{v:.2e}" for v in q]
        )
    text = format_table(["U", "min", "Q1", "median", "Q3", "max"], rows)
    report("fig02_accuracy", text)

    # Paper claims: differences ~< 1e-10..1e-12 and no significant U
    # dependence of the scale.
    for u, mx in maxima.items():
        assert mx < 1e-9, f"pre-pivoting lost accuracy at U={u}: {mx:.2e}"
    scales = np.log10(np.array(list(maxima.values())))
    assert scales.max() - scales.min() < 3.0, "accuracy should not depend on U"

    # headline benchmark: one pair of evaluations at U = 8
    factory, field, engine = make_field_engine(6, 6, u=8.0, n_slices=40)
    chain = engine.cache.chain(1, 0)
    benchmark(lambda: stratified_inverse(chain, method="prepivot"))
