"""Smoke campaign for CI: 4 tiny jobs, one injected kill, kill + resume.

Exercises the campaign orchestrator's whole failure surface end to end
and publishes ``benchmarks/results/campaign_report.json`` as a CI
artifact (next to ``BENCH_backends.json``):

1. **Faulted run** — a 2x2 (U x mu) grid under
   ``FaultPlan(kill_job=1, on_attempt=1)``: the killed worker must be
   retried (exactly one retry) and every job must end ``done``.
2. **Kill + resume** — the same spec launched via the real CLI in a
   subprocess, SIGKILL'd mid-campaign, then finished with
   ``repro campaign resume``: completed jobs must not re-run (run
   counters stay 1) and the catalog must match run 1's **bit-for-bit**.

Any violated invariant exits nonzero, failing the CI leg.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign_smoke.py
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"
SPEC = {
    "name": "ci-smoke",
    "base": {
        "nx": 2, "ny": 2, "dtau": 0.125, "l": 8, "north": 4,
        "nwarm": 2, "npass": 6,
    },
    "grid": {"u": [2.0, 4.0], "mu": [0.0, -0.25]},
    "replicas": 1,
    "base_seed": 11,
    "checkpoint_every": 2,
}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_catalog_arrays(campaign_dir: Path) -> dict:
    """Every observable array of every done job, keyed for comparison."""
    from repro.campaign import ResultsCatalog

    out = {}
    for record in ResultsCatalog.load(campaign_dir).records:
        if record.status != "done":
            fail(f"job {record.job_id} is {record.status}, expected done")
        for name, est in record.observables().items():
            out[f"{record.job_id}/{name}/mean"] = np.asarray(est.mean)
            out[f"{record.job_id}/{name}/error"] = np.asarray(est.error)
    return out


def run_faulted(campaign_dir: Path) -> dict:
    from repro.campaign import (
        CampaignSpec,
        FaultPlan,
        SchedulerConfig,
        run_campaign,
    )

    summary = run_campaign(
        CampaignSpec.from_dict(SPEC),
        campaign_dir,
        config=SchedulerConfig(
            max_workers=2,
            max_attempts=3,
            backoff_base=0.05,
            fault_plan=FaultPlan(kill_job=1, on_attempt=1, after_sweeps=2),
        ),
    )
    if not summary.all_done:
        fail(f"faulted run did not complete: {summary.counts}")
    if summary.retries != 1:
        fail(f"expected exactly one retry, saw {summary.retries}")
    print(f"faulted run ok: {summary.counts}, retries={summary.retries}")
    return load_catalog_arrays(campaign_dir)


def run_kill_resume(campaign_dir: Path, spec_path: Path) -> dict:
    """Launch the CLI, SIGKILL it once a job completes, then resume."""
    from repro.campaign import Manifest

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        "src" + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else "src"
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "run", str(spec_path),
            "--dir", str(campaign_dir), "--max-workers", "1", "--quiet",
        ],
        env=env,
        cwd=Path(__file__).parent.parent,
        start_new_session=True,  # so the kill takes the workers too
    )
    deadline = time.monotonic() + 120
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before we could kill it; resume is a no-op
            manifest_path = campaign_dir / "manifest.jsonl"
            if manifest_path.exists():
                done = sum(
                    1
                    for s in Manifest.load(campaign_dir).states.values()
                    if s.status == "done"
                )
                if done >= 1:
                    os.killpg(proc.pid, signal.SIGKILL)
                    proc.wait()
                    print(f"killed campaign with {done} job(s) done")
                    break
            time.sleep(0.1)
        else:
            fail("campaign subprocess neither progressed nor finished")
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait()

    runs_before = {
        job_id: state.runs
        for job_id, state in Manifest.load(campaign_dir).states.items()
        if state.status == "done"
    }
    resume = subprocess.run(
        [
            sys.executable, "-m", "repro", "campaign", "resume",
            str(campaign_dir), "--max-workers", "2",
        ],
        env=env,
        cwd=Path(__file__).parent.parent,
    )
    if resume.returncode != 0:
        fail(f"campaign resume exited {resume.returncode}")
    manifest = Manifest.load(campaign_dir)
    for job_id, runs in runs_before.items():
        after = manifest.states[job_id].runs
        if after != runs:
            fail(
                f"resume re-ran completed job {job_id}: "
                f"runs {runs} -> {after}"
            )
    print(f"kill+resume ok: {manifest.counts()}")
    return load_catalog_arrays(campaign_dir)


def main() -> int:
    workdir = RESULTS_DIR / "campaign_smoke"
    shutil.rmtree(workdir, ignore_errors=True)
    workdir.mkdir(parents=True)
    spec_path = workdir / "spec.json"
    spec_path.write_text(json.dumps(SPEC, indent=1))

    catalog_a = run_faulted(workdir / "faulted")
    catalog_b = run_kill_resume(workdir / "interrupted", spec_path)

    if sorted(catalog_a) != sorted(catalog_b):
        fail(
            "catalogs hold different keys: "
            f"{sorted(set(catalog_a) ^ set(catalog_b))[:6]}"
        )
    for key, value in catalog_a.items():
        if not np.array_equal(value, catalog_b[key]):
            fail(f"catalog mismatch at {key}")
    print(f"catalogs bit-identical across {len(catalog_a)} arrays")

    from repro.campaign import write_report_json

    report_path = RESULTS_DIR / "campaign_report.json"
    report = write_report_json(workdir / "interrupted", report_path)
    print(
        f"report -> {report_path} "
        f"({report['counts']}, {report['total_retries']} retries)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
