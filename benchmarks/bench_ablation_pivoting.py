"""Ablation: pivoting policy vs chain difficulty.

Three policies — full QRP (Algorithm 2), pre-pivoting (Algorithm 3), no
pivoting at all — on the adversarial chain for grading: the *ordered*
(ferromagnetic) HS field, where every slice compounds the same
direction-dependent scales and the product's dynamic range grows
exponentially in beta. Shows both halves of the paper's claim:

1. pre-pivoting tracks full pivoting to ~1e-13 at every difficulty,
2. some grading control is genuinely required — with no pivoting the
   evaluation loses *all* accuracy (O(1) relative error) once beta*U is
   large, because nothing keeps the graded scales quarantined in D.

Plus the performance half on a paper-scale chain (L = 160, k = 10):
sequential pivot synchronization points (the communication-cost proxy,
n per QRP call vs 1 per pre-pivot) and wall-clock per evaluation.
"""

import warnings

import numpy as np
import pytest

from bench_common import format_table, make_field_engine, time_call
from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import (
    GreensFunctionEngine,
    StratificationStats,
    stratified_inverse,
)

BETAS = [5.0, 10.0, 20.0]


def _ordered_chain(u, beta):
    n_slices = int(round(beta / 0.125))
    model = HubbardModel(
        SquareLattice(4, 4), u=u, beta=beta, n_slices=n_slices
    )
    factory = BMatrixFactory(model)
    field = HSField.ordered(n_slices, model.n_sites)
    engine = GreensFunctionEngine(factory, field, cluster_size=8)
    return engine.cache.chain(1, 0)


def test_ablation_pivoting_accuracy(benchmark, report):
    rows = []
    errs = {m: {} for m in ("prepivot", "nopivot", "svd", "jacobi")}
    for beta in BETAS:
        chain = _ordered_chain(u=8.0, beta=beta)
        ref = stratified_inverse(chain, method="qrp")
        scale = np.linalg.norm(ref)
        for m in errs:
            with warnings.catch_warnings():
                # the unpivoted / absolute-accuracy chains are *expected*
                # to go ill-conditioned here; that failure is the point
                warnings.simplefilter("ignore")
                g = stratified_inverse(chain, method=m)
            errs[m][beta] = float(np.linalg.norm(g - ref) / scale)
        rows.append(
            [f"{beta:g}"] + [f"{errs[m][beta]:.2e}" for m in errs]
        )
    report(
        "ablation_pivoting_accuracy",
        format_table(
            ["beta (U=8, ordered field)"]
            + [f"{m} vs QRP" for m in errs],
            rows,
        ),
    )

    for beta in BETAS:
        assert errs["prepivot"][beta] < 1e-9, beta
        # relative-accuracy Jacobi-SVD stratification also survives
        assert errs["jacobi"][beta] < 1e-9, beta
    assert errs["nopivot"][BETAS[-1]] > 0.1, (
        "without any pivoting the hardest chain must lose all accuracy"
    )
    # the historical LAPACK-SVD route degrades too (absolute accuracy)
    assert errs["svd"][BETAS[-1]] > 1e-3

    chain = _ordered_chain(u=8.0, beta=BETAS[0])
    benchmark(stratified_inverse, chain, method="prepivot")


def test_ablation_pivoting_cost(benchmark, report):
    # paper-scale chain length: L = 160, k = 10 -> 16 chain steps, at a
    # matrix size where the QRP/QR kernel gap is clearly resolved
    factory, field, engine = make_field_engine(
        14, 14, u=6.0, beta=20.0, n_slices=160, cluster=10
    )
    chain = engine.cache.chain(1, 0)
    rows = []
    sync = {}
    times = {}
    for method in ("qrp", "prepivot", "nopivot"):
        stats = StratificationStats()
        stratified_inverse(chain, method=method, stats=stats)
        t = time_call(stratified_inverse, chain, method=method)
        sync[method] = stats.sync_points
        times[method] = t
        rows.append([method, stats.sync_points, f"{t*1e3:.2f}"])
    report(
        "ablation_pivoting_cost",
        format_table(["method", "sync points", "eval time (ms)"], rows),
    )

    # 16 QRP calls x n sync points vs one full QRP + 15 single sorts
    assert sync["qrp"] > 10 * sync["prepivot"], "communication savings"
    assert times["prepivot"] < times["qrp"], "and it must be faster"

    benchmark(stratified_inverse, chain, method="prepivot")
