"""Figure 4: GFlops rate of the Green's function evaluation vs N.

The paper's headline kernel result: the improved evaluation sustains
~70% of DGEMM and *beats* DGEQRF's own rate. Here the nominal flop count
of the stratified evaluation is accumulated by the library's flop tally
and divided by measured wall-clock, alongside DGEMM and DGEQRF rates at
matching sizes.

Asserted shape: rate(G-eval) is a sizeable fraction (> 25%) of DGEMM at
the largest size and above the DGEQP3 rate; rates grow with N.
"""

import numpy as np
import pytest
import scipy.linalg as sla

from bench_common import format_table, make_field_engine, time_call
from repro.linalg import gemm_flops, tally

SIZES = [(6, 6), (8, 8), (10, 10), (14, 14), (16, 16)]
L = 40


def _gf_rate(lx, ly) -> float:
    factory, field, engine = make_field_engine(
        lx, ly, u=4.0, n_slices=L, cluster=10, method="prepivot"
    )
    engine.boundary_greens(1, 0)  # warm cache

    def eval_once():
        engine.invalidate_slice(0)
        return engine.boundary_greens(1, 0)

    with tally() as t:
        eval_once()
    nominal = t.total_flops
    secs = time_call(eval_once)
    return nominal / secs / 1e9


def _dgemm_rate(n) -> float:
    rng = np.random.default_rng(2)
    a = rng.normal(size=(n, n))
    return gemm_flops(n, n, n) / time_call(lambda: a @ a) / 1e9


def _dgeqp3_rate(n) -> float:
    rng = np.random.default_rng(3)
    a = rng.normal(size=(n, n))
    secs = time_call(
        lambda: sla.qr(a, mode="raw", pivoting=True, check_finite=False)
    )
    return (4.0 / 3.0 * n**3) / secs / 1e9


def test_fig4_series(benchmark, report):
    rows = []
    series = []
    for lx, ly in SIZES:
        n = lx * ly
        r_gf = _gf_rate(lx, ly)
        r_gemm = _dgemm_rate(n)
        r_qp3 = _dgeqp3_rate(n)
        rows.append(
            [n, f"{r_gf:.2f}", f"{r_gemm:.2f}", f"{r_qp3:.2f}",
             f"{100*r_gf/r_gemm:.0f}%"]
        )
        series.append((r_gf, r_gemm, r_qp3))
    text = format_table(
        ["N", "G-eval GF/s", "DGEMM GF/s", "DGEQP3 GF/s", "G/DGEMM"], rows
    )
    report("fig04_gf_gflops", text)

    r_gf, r_gemm, r_qp3 = series[-1]
    assert r_gf > r_qp3, "improved evaluation must beat the QP3 rate"
    # the trend claim, judged over the two largest sizes so one noisy
    # timing sample (shared machines!) cannot flip it
    best_frac = max(g / m for g, m, _ in series[-2:])
    assert best_frac > 0.25, "should sustain a sizeable DGEMM fraction"

    n = SIZES[-1][0] * SIZES[-1][1]
    rng = np.random.default_rng(4)
    a = rng.normal(size=(n, n))
    benchmark(lambda: a @ a)


def test_gf_gflops_headline(benchmark):
    factory, field, engine = make_field_engine(
        10, 10, u=4.0, n_slices=L, cluster=10
    )
    engine.boundary_greens(1, 0)

    def eval_once():
        engine.invalidate_slice(0)
        engine.boundary_greens(1, 0)

    benchmark(eval_once)


def test_gf_threaded_norms(benchmark):
    """Sec. IV-B variant: pre-pivot norms on the worker pool.

    Headline timing at the largest bench size; correctness (identical
    permutations, hence identical results) is asserted here, the wall-
    clock benefit only materializes at matrix sizes past the threading
    grain (N >= a few hundred)."""
    import numpy as np

    from repro.core import GreensFunctionEngine

    factory, field, _ = make_field_engine(16, 16, u=4.0, n_slices=L, cluster=10)
    serial = GreensFunctionEngine(factory, field, cluster_size=10)
    threaded = GreensFunctionEngine(
        factory, field, cluster_size=10, threaded_norms=True
    )
    np.testing.assert_allclose(
        threaded.boundary_greens(1, 0), serial.boundary_greens(1, 0),
        atol=1e-12,
    )

    def eval_once():
        threaded.invalidate_slice(0)
        threaded.boundary_greens(1, 0)

    benchmark(eval_once)
