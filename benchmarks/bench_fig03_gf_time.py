"""Figure 3: mean time per Green's function evaluation vs number of sites.

The paper compares the *previous* method (full QRP stratification, no
cluster reuse) against the improved pipeline (pre-pivoting + cluster
recycling) and reports up to 3x faster evaluations. Same comparison here
at bench sizes N = 36..196, L = 40.

Asserted shape: the improved path wins at every size, and by a growing
or stable factor >= 1.3x at the largest N.
"""

import numpy as np
import pytest

from bench_common import format_table, make_field_engine, time_call
from repro.core import GreensFunctionEngine

SIZES = [(6, 6), (8, 8), (10, 10), (14, 14), (16, 16)]
L = 40


def _old_method_eval(engine: GreensFunctionEngine) -> None:
    """The baseline: QRP stratification over freshly rebuilt clusters."""
    engine.invalidate_all()
    engine.boundary_greens(1, 0)


def _new_method_eval(engine: GreensFunctionEngine) -> None:
    """The paper's pipeline: pre-pivoted QR + recycled clusters.

    In a real sweep only one cluster per refresh is stale; emulate that
    steady state by invalidating a single cluster."""
    engine.invalidate_slice(0)
    engine.boundary_greens(1, 0)


def _setup(lx, ly, method):
    factory, field, engine = make_field_engine(
        lx, ly, u=4.0, n_slices=L, cluster=10, method=method
    )
    engine.boundary_greens(1, 0)  # warm the cluster cache
    return engine


def test_fig3_series(benchmark, report):
    rows = []
    speedups = []
    for lx, ly in SIZES:
        n = lx * ly
        t_old = time_call(_old_method_eval, _setup(lx, ly, "qrp"))
        t_new = time_call(_new_method_eval, _setup(lx, ly, "prepivot"))
        speedups.append(t_old / t_new)
        rows.append(
            [n, f"{t_old*1e3:.1f}", f"{t_new*1e3:.1f}", f"{t_old/t_new:.2f}x"]
        )
    text = format_table(
        ["N", "old method (ms)", "improved (ms)", "speedup"], rows
    )
    report("fig03_gf_time", text)

    assert all(s > 1.0 for s in speedups), "improved method must always win"
    assert speedups[-1] > 1.3, "paper reports up to ~3x; demand >= 1.3x"

    benchmark(_new_method_eval, _setup(*SIZES[-1], "prepivot"))


@pytest.mark.parametrize("method", ["qrp", "prepivot"])
def test_gf_evaluation(benchmark, method):
    """Headline: one evaluation at N = 100 under each policy."""
    engine = _setup(10, 10, method)
    if method == "qrp":
        benchmark(_old_method_eval, engine)
    else:
        benchmark(_new_method_eval, engine)
