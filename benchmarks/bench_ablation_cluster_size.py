"""Ablation: cluster size k — speed vs numerical accuracy.

The paper (Sec. III-A2) uses k ~ 10: each QR step then covers k slice
matrices, cutting the QR count by k while the intra-cluster product
stays well-enough conditioned. This bench sweeps k and records both the
evaluation time and the deviation of the resulting G from the k = 1
(one-QR-per-slice) reference.

Expected: monotone speedup with k; error grows with k but stays below
1e-8 through k = 10 at the paper's parameter scale.
"""

import numpy as np
import pytest

from bench_common import format_table, make_field_engine, time_call
from repro.core import GreensFunctionEngine

KS = [1, 2, 5, 10, 20]
L = 40


def test_ablation_cluster_size(benchmark, report):
    factory, field, _ = make_field_engine(8, 8, u=6.0, n_slices=L, cluster=10)

    def engine_for(k):
        return GreensFunctionEngine(factory, field, cluster_size=k)

    reference = engine_for(1).boundary_greens(1, 0)
    rows = []
    times = {}
    errors = {}
    for k in KS:
        eng = engine_for(k)

        def eval_once():
            eng.invalidate_all()
            return eng.boundary_greens(1, 0)

        g = eval_once()
        err = np.linalg.norm(g - reference) / np.linalg.norm(reference)
        t = time_call(eval_once)
        times[k] = t
        errors[k] = err
        rows.append([k, f"{t*1e3:.2f}", f"{err:.2e}"])
    report(
        "ablation_cluster_size",
        format_table(["k", "eval time (ms)", "rel. error vs k=1"], rows),
    )

    assert times[10] < times[1], "clustering must pay off"
    assert errors[10] < 1e-8, "k = 10 stays numerically safe (paper's choice)"
    assert errors[20] >= errors[2], "error grows with cluster size"

    benchmark(lambda: engine_for(10).boundary_greens(1, 0))
