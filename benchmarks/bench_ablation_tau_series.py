"""Ablation: incremental vs per-tau time-displaced Green's evaluation.

The dynamic measurements need ``G(tau, 0)`` on a tau grid. Evaluating
each point independently stratifies both partial chains from scratch —
O((L/k)^2) QR steps across the grid — while the incremental
prefix/suffix scheme (:func:`repro.core.displaced_series_fast`) does
O(L/k) total. This bench measures both on identical workloads and
checks they produce the same functions.

Expected: speedup grows linearly with the number of grid points (the
paper-scale L = 160, k = 10 grid has 16 points -> ~8x).
"""

import numpy as np
import pytest

from bench_common import format_table, make_field_engine, time_call
from repro.core import displaced_greens, displaced_series_fast

CASES = [(20, 5), (40, 10), (80, 10)]  # (L, k)


def _naive_series(factory, field, k):
    out = []
    for c in range(field.n_slices // k):
        out.append(
            displaced_greens(factory, field, 1, (c + 1) * k - 1)
        )
    return out


def test_ablation_tau_series(benchmark, report):
    rows = []
    speedups = []
    for L, k in CASES:
        factory, field, _ = make_field_engine(
            6, 6, u=4.0, n_slices=L, cluster=k, seed=L
        )
        t_naive = time_call(_naive_series, factory, field, k, repeats=1)
        t_fast = time_call(
            lambda: displaced_series_fast(factory, field, 1, k), repeats=1
        )
        # identical results
        naive = _naive_series(factory, field, k)
        _, fast = displaced_series_fast(factory, field, 1, k)
        err = max(
            float(np.linalg.norm(a - b) / np.linalg.norm(a))
            for a, b in zip(naive, fast)
        )
        assert err < 1e-9, (L, k, err)
        speedups.append(t_naive / t_fast)
        rows.append(
            [f"L={L}, k={k}", L // k, f"{t_naive*1e3:.1f}",
             f"{t_fast*1e3:.1f}", f"{t_naive/t_fast:.1f}x"]
        )
    report(
        "ablation_tau_series",
        format_table(
            ["case", "grid points", "per-tau (ms)", "incremental (ms)",
             "speedup"],
            rows,
        ),
    )
    assert speedups[-1] > 2.0, "incremental series must win on long grids"
    assert speedups[-1] > speedups[0], "and win more as the grid grows"

    factory, field, _ = make_field_engine(6, 6, u=4.0, n_slices=40, cluster=10)
    benchmark(displaced_series_fast, factory, field, 1, 10)
