"""Shared fixtures for the paper-reproduction benchmarks.

Every ``bench_*`` file regenerates one table or figure of Tomas et al.
(IPDPS 2012) at a bench-friendly scale. Besides the pytest-benchmark
timings, each writes the paper-style data series to
``benchmarks/results/<name>.txt`` so the reproduction artifacts survive
output capture; EXPERIMENTS.md indexes them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Write a named reproduction artifact and echo it."""

    def _report(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text if text.endswith("\n") else text + "\n")
        print(f"\n[{name}]\n{text}")
        return path

    return _report
