"""Figure 10: GFlops of the whole Green's function evaluation, hybrid CPU+GPU.

The paper's preliminary hybrid pipeline offloads clustering and wrapping
to the GPU while the QR stratification stays on the CPU, and reports the
combined rate of a full G evaluation rising with N well past the
CPU-only rate.

Here the hybrid engine runs the real computation; GPU phases advance the
simulated device's clock, CPU phases are measured wall-clock, and the
rate divides the nominal flops by the summed hybrid time (documented as
model-derived in EXPERIMENTS.md). The CPU-only line is the same
evaluation timed entirely on the host.

Asserted shape: hybrid beats CPU-only at the largest size, with the
advantage growing with N as GEMM work dominates.
"""

import numpy as np
import pytest

from bench_common import format_table, make_field_engine, time_call
from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import GreensFunctionEngine
from repro.gpu import HybridGreensEngine
from repro.linalg import tally

SIZES = [(6, 6), (10, 10), (14, 14), (16, 16)]
L = 40


def _build(lx, ly, hybrid: bool):
    model = HubbardModel(
        SquareLattice(lx, ly), u=4.0, beta=5.0, n_slices=L
    )
    rng = np.random.default_rng(lx)
    field = HSField.random(L, model.n_sites, rng)
    factory = BMatrixFactory(model)
    cls = HybridGreensEngine if hybrid else GreensFunctionEngine
    return cls(factory, field, cluster_size=10)


def _nominal_flops(engine) -> float:
    engine.invalidate_all()
    with tally() as t:
        engine.boundary_greens(1, 0)
    return t.total_flops


def _cpu_rate(lx, ly) -> float:
    eng = _build(lx, ly, hybrid=False)
    nominal = _nominal_flops(eng)

    def eval_once():
        eng.invalidate_all()
        eng.boundary_greens(1, 0)

    return nominal / time_call(eval_once) / 1e9


def _hybrid_rate(lx, ly) -> float:
    eng = _build(lx, ly, hybrid=True)
    nominal = _nominal_flops(eng)
    # time one steady-state evaluation on the hybrid clocks
    eng.invalidate_all()
    strat_before = eng.profiler.seconds.get("stratification", 0.0)
    gpu_before = eng.device.elapsed
    eng.boundary_greens(1, 0)
    cpu = eng.profiler.seconds.get("stratification", 0.0) - strat_before
    gpu = eng.device.elapsed - gpu_before
    return nominal / (cpu + gpu) / 1e9


def test_fig10_hybrid_rates(benchmark, report):
    rows = []
    ratios = []
    for lx, ly in SIZES:
        n = lx * ly
        r_cpu = _cpu_rate(lx, ly)
        r_hyb = _hybrid_rate(lx, ly)
        ratios.append(r_hyb / r_cpu)
        rows.append(
            [n, f"{r_cpu:.2f}", f"{r_hyb:.2f}", f"{r_hyb/r_cpu:.2f}x"]
        )
    text = format_table(
        ["N", "CPU-only GF/s", "hybrid GF/s", "hybrid/CPU"], rows
    )
    report("fig10_hybrid", text)

    assert ratios[-1] > 1.0, "hybrid must win at the largest size"
    assert ratios[-1] > ratios[0], "advantage should grow with N"

    benchmark(_hybrid_rate, *SIZES[0])
