"""Autotuner benchmark: tuned parameters vs the hardcoded defaults.

Tunes the paper-scale 8x8, beta = 4 workload (L = 32 at dtau = 0.125)
with the warmup autotuner, then runs the *same seeded workload* twice
from scratch — once with the hardcoded defaults (cluster 8, delay 32),
once with the tuned parameters — and emits
``benchmarks/results/BENCH_autotune.json`` (and a tracked copy at the
repo root) with:

* wall-clock seconds and nominal GFlops for both runs,
* the tuned-vs-default margin in percent (the defaults are themselves
  candidate #0 of the search, so the tuner can never lock something it
  measured slower — the margin is >= 0 up to run-to-run noise),
* the full trial-by-trial decision trace, and
* the tuned configuration's wrap drift against the health tolerance
  (a fast-but-drifting configuration must never win).

Standalone on purpose (not a pytest-benchmark case): CI runs it directly
to publish the JSON artifact. ``--quick`` shrinks to a 4x4 smoke scale.

Usage::

    PYTHONPATH=src python benchmarks/bench_autotune.py --quick
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
ROOT_COPY = Path(__file__).parents[1] / "BENCH_autotune.json"

#: run-to-run wall-clock noise allowance for the no-slower check; the
#: tuned and default runs execute the identical Markov chain when the
#: tuner keeps the defaults, so anything past this is a real regression.
NOISE_PCT = 5.0


def _simulation(size, n_slices, cluster, delay, seed):
    from repro import HubbardModel, Simulation, SquareLattice

    model = HubbardModel(
        SquareLattice(size, size), u=4.0, beta=n_slices * 0.125,
        n_slices=n_slices,
    )
    return Simulation(
        model, seed=seed, cluster_size=cluster, max_delay=delay,
        measure_arrays=False,
    )


def timed_run(size, n_slices, params, seed, warmup, sweeps, drift_tol) -> dict:
    """One fresh, seeded run at the given parameters, with a final
    wrap-drift audit of the configuration that just ran."""
    from repro.linalg import flops
    from repro.telemetry import NumericalHealthWatchdog, WatchdogConfig

    sim = _simulation(
        size, n_slices, params["cluster_size"], params["max_delay"], seed
    )
    t0 = time.perf_counter()
    with flops.tally() as tally:
        sim.warmup(warmup)
        sim.measure_sweeps(sweeps)
    wall = time.perf_counter() - t0
    report = NumericalHealthWatchdog(
        sim.engine, WatchdogConfig(check_every=1, drift_tol=drift_tol)
    ).check(sim._sweep_index)
    result = sim.result(n_warmup=warmup, n_measurement=sweeps)
    return {
        "params": dict(params),
        "wall_seconds": wall,
        "gflops": tally.gflops_rate(wall),
        "total_gflop": tally.total_flops / 1e9,
        "wrap_drift": report.wrap_drift,
        "healthy": report.healthy,
        "density": result.observables["density"].scalar,
        "mean_sign": result.mean_sign,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-scale workload (4x4, few sweeps) instead of bench scale",
    )
    parser.add_argument(
        "--drift-tol", type=float, default=1e-6,
        help="wrap-drift tolerance for the health gate (default 1e-6)",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULTS_DIR / "BENCH_autotune.json",
    )
    parser.add_argument(
        "--no-root-copy", action="store_true",
        help="skip refreshing the tracked copy at the repo root",
    )
    args = parser.parse_args(argv)

    from repro.autotune import WarmupAutotuner

    if args.quick:
        size, n_slices, warmup, sweeps, trial_sweeps = 4, 16, 4, 6, 1
    else:
        size, n_slices, warmup, sweeps, trial_sweeps = 8, 32, 10, 20, 2
    seed = 11
    defaults = {"cluster_size": 8, "max_delay": 32}

    print(
        f"tuning {size}x{size}, L = {n_slices} "
        f"(defaults: k = {defaults['cluster_size']}, "
        f"delay = {defaults['max_delay']}) ..."
    )
    tune_sim = _simulation(
        size, n_slices, defaults["cluster_size"], defaults["max_delay"], seed
    )
    tuned = WarmupAutotuner(
        tune_sim, sweeps_per_candidate=trial_sweeps,
        drift_tol=args.drift_tol,
    ).run()
    print(tuned.describe())

    print("default run ...")
    default_run = timed_run(
        size, n_slices, defaults, seed, warmup, sweeps, args.drift_tol
    )
    print(
        f"  {default_run['wall_seconds']:.3f} s, "
        f"{default_run['gflops']:.2f} GFlops"
    )
    print("tuned run ...")
    tuned_run = timed_run(
        size, n_slices,
        {
            "cluster_size": tuned.chosen.cluster_size,
            "max_delay": tuned.chosen.max_delay,
        },
        seed, warmup, sweeps, args.drift_tol,
    )
    print(
        f"  {tuned_run['wall_seconds']:.3f} s, "
        f"{tuned_run['gflops']:.2f} GFlops"
    )

    margin_pct = 100.0 * (
        default_run["wall_seconds"] - tuned_run["wall_seconds"]
    ) / default_run["wall_seconds"]
    tuned_no_slower = (
        tuned_run["wall_seconds"]
        <= default_run["wall_seconds"] * (1.0 + NOISE_PCT / 100.0)
    )
    drift_ok = tuned_run["wrap_drift"] <= args.drift_tol
    print(
        f"margin: {margin_pct:+.1f}% vs defaults "
        f"(wrap drift {tuned_run['wrap_drift']:.2e}, "
        f"tol {args.drift_tol:g})"
    )
    if not tuned_no_slower:
        print("WARNING: tuned run measurably slower than defaults",
              file=sys.stderr)
    if not drift_ok:
        print("WARNING: tuned configuration exceeds the drift tolerance",
              file=sys.stderr)

    doc = {
        "quick": args.quick,
        "workload": {
            "lattice": f"{size}x{size}",
            "n_slices": n_slices,
            "beta": n_slices * 0.125,
            "u": 4.0,
            "seed": seed,
            "warmup_sweeps": warmup,
            "measurement_sweeps": sweeps,
        },
        "defaults": defaults,
        "autotune": tuned.to_dict(),
        "default_run": default_run,
        "tuned_run": tuned_run,
        "margin_pct": margin_pct,
        "noise_pct": NOISE_PCT,
        "tuned_no_slower": tuned_no_slower,
        "drift_tol": args.drift_tol,
        "drift_within_tolerance": drift_ok,
    }
    args.output.parent.mkdir(exist_ok=True)
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    if not args.no_root_copy:
        shutil.copyfile(args.output, ROOT_COPY)
        print(f"wrote {ROOT_COPY}")
    return 0 if (tuned_no_slower and drift_ok) else 1


if __name__ == "__main__":
    sys.exit(main())
