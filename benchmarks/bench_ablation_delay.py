"""Ablation: delayed-update block size.

QUEST delays accepted-flip updates into rank-m GEMMs (paper Sec. II-B).
This bench sweeps the block size over full sweeps and records the sweep
time; physics is identical by construction (asserted via the field
state), so this is a pure performance knob.

Expected: delaying beats plain rank-1 (m = 1) once N is large enough for
GEMM to out-run n^2 memory-bound rank-1 touches; the curve flattens
beyond m ~ 32 (the paper-era sweet spot).
"""

import numpy as np
import pytest

from bench_common import format_table, make_field_engine, time_call
from repro.dqmc import sweep

DELAYS = [1, 4, 16, 32, 64]


def _sweep_time(delay: int) -> float:
    factory, field, engine = make_field_engine(
        12, 12, u=4.0, n_slices=24, cluster=8, seed=1
    )
    rng = np.random.default_rng(5)
    sweep(engine, rng, max_delay=delay)  # thermalize buffers/caches
    rng = np.random.default_rng(6)
    return time_call(
        lambda: sweep(engine, rng, max_delay=delay), repeats=1
    )


def test_ablation_delay(benchmark, report):
    times = {d: _sweep_time(d) for d in DELAYS}
    rows = [[d, f"{times[d]*1e3:.1f}"] for d in DELAYS]
    report(
        "ablation_delay",
        format_table(["max_delay", "sweep time (ms)"], rows),
    )

    assert times[32] <= times[1] * 1.1, (
        "delayed updates must not lose to rank-1"
    )

    # physics invariance: identical Markov chain for any delay
    fields = {}
    for d in (1, 32):
        factory, field, engine = make_field_engine(
            6, 6, u=4.0, n_slices=16, cluster=8, seed=2
        )
        sweep(engine, np.random.default_rng(7), max_delay=d)
        fields[d] = field.h.copy()
    assert np.array_equal(fields[1], fields[32])

    benchmark(_sweep_time, 32)
