"""Precision-policy benchmark: full64 vs mixed on the simulated C2050.

Runs the paper-scale 8x8, beta = 4 workload (L = 32 at dtau = 0.125)
through the ``gpu-sim`` backend twice from the same seed — once under
``full64``, once under ``mixed`` — and emits
``benchmarks/results/BENCH_precision.json`` (and a tracked copy at the
repo root) with:

* simulated device seconds for both runs and the model-time speedup
  (the acceptance bar is >= 1.2x; the C2050's 2:1 SP:DP GEMM peak plus
  halved transfer/scale bytes typically lands near 1.8x),
* host wall seconds and nominal GFlops (informational — the host
  executes both policies with the same numpy kernels),
* the scalar-observable deviation between the policies. Over a long
  run the float32 Metropolis ratios eventually round one accept
  decision differently and the same-seed chains decorrelate, so at
  bench scale the policies agree only statistically (the bound here is
  a physics-sanity check); the strict same-trajectory 1e-5 agreement
  is pinned at test scale by ``tests/test_precision.py``, and
* a hostile leg: the same mixed workload under an impossibly tight
  wrap-drift tolerance, demonstrating automatic watchdog promotion to
  ``full64`` mid-run.

Standalone on purpose (not a pytest-benchmark case): CI runs it directly
to publish the JSON artifact. ``--quick`` shrinks to a 4x4 smoke scale.

Usage::

    PYTHONPATH=src python benchmarks/bench_precision.py --quick
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
ROOT_COPY = Path(__file__).parents[1] / "BENCH_precision.json"

#: ISSUE acceptance: mixed must save at least this factor of simulated
#: device time over full64 on the gpu-sim workload.
MIN_SPEEDUP = 1.2

#: Physics-sanity bound on the cross-policy observable deviation. The
#: chains share a seed but decorrelate once a float32 Metropolis ratio
#: rounds an accept decision the other way, so past that point the
#: deviation is few-sweep statistical noise (~1e-3 here), not rounding;
#: anything beyond this bound means genuinely corrupted physics. The
#: strict 1e-5 same-trajectory agreement is asserted at 4x4, beta = 2
#: scale in tests/test_precision.py.
OBS_TOL = 5e-2


def _simulation(size, n_slices, seed, precision, watchdog=None):
    from repro import HubbardModel, Simulation, SquareLattice

    model = HubbardModel(
        SquareLattice(size, size), u=4.0, beta=n_slices * 0.125,
        n_slices=n_slices,
    )
    return Simulation(
        model, seed=seed, cluster_size=8, measure_arrays=False,
        backend="gpu-sim", precision=precision, watchdog=watchdog,
    )


def policy_run(size, n_slices, seed, precision, warmup, sweeps) -> dict:
    """One fresh, seeded gpu-sim run under the given policy."""
    from repro.linalg import flops

    sim = _simulation(size, n_slices, seed, precision)
    t0 = time.perf_counter()
    with flops.tally() as tally:
        sim.warmup(warmup)
        sim.measure_sweeps(sweeps)
    wall = time.perf_counter() - t0
    device = sim.engine.device
    result = sim.result(n_warmup=warmup, n_measurement=sweeps)
    return {
        "precision": sim.precision,
        "wall_seconds": wall,
        "device_model_seconds": device.elapsed,
        "kernel_launches": device.kernel_launches,
        "h2d_bytes": device.h2d_bytes,
        "peak_device_bytes": device.peak_bytes,
        "gflops": tally.gflops_rate(wall),
        "density": result.observables["density"].scalar,
        "double_occupancy": result.observables["double_occupancy"].scalar,
        "mean_sign": result.mean_sign,
    }


def hostile_run(size, n_slices, seed, warmup) -> dict:
    """Mixed-precision run under an un-meetable drift tolerance.

    The watchdog (checking every sweep) alerts immediately, promotes
    the engine to ``full64`` in place and forces a refresh — the run
    finishes on the safer rung instead of measuring drifted physics.
    """
    from repro.telemetry import WatchdogConfig

    sim = _simulation(
        size, n_slices, seed, "mixed",
        watchdog=WatchdogConfig(check_every=1, drift_tol=1e-300),
    )
    sim.warmup(warmup)
    wd = sim.watchdog
    promoted = [r.promoted_to for r in wd.reports if r.promoted_to]
    return {
        "configured_precision": "mixed",
        "final_precision": sim.precision,
        "promotions": wd.promotions,
        "promoted_to": promoted,
        "alerts": wd.alerts,
        "forced_refreshes": wd.forced_refreshes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-scale workload (4x4, few sweeps) instead of bench scale",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULTS_DIR / "BENCH_precision.json",
    )
    parser.add_argument(
        "--no-root-copy", action="store_true",
        help="skip refreshing the tracked copy at the repo root",
    )
    args = parser.parse_args(argv)

    if args.quick:
        size, n_slices, warmup, sweeps = 4, 16, 3, 5
    else:
        size, n_slices, warmup, sweeps = 8, 32, 5, 10
    seed = 11

    runs = {}
    for precision in ("full64", "mixed"):
        print(f"{precision} run ({size}x{size}, L = {n_slices}) ...")
        runs[precision] = policy_run(
            size, n_slices, seed, precision, warmup, sweeps
        )
        r = runs[precision]
        print(
            f"  {r['device_model_seconds']:.3f} model s on the simulated "
            f"C2050, {r['wall_seconds']:.3f} host s, "
            f"density {r['density']:.8f}"
        )

    speedup = (
        runs["full64"]["device_model_seconds"]
        / runs["mixed"]["device_model_seconds"]
    )
    obs_dev = max(
        abs(runs["full64"][name] - runs["mixed"][name])
        for name in ("density", "double_occupancy")
    )
    speedup_ok = speedup >= MIN_SPEEDUP
    obs_ok = obs_dev <= OBS_TOL
    print(
        f"mixed speedup: {speedup:.2f}x model time "
        f"(bar {MIN_SPEEDUP}x); observable deviation {obs_dev:.2e} "
        f"(tol {OBS_TOL:g})"
    )
    if not speedup_ok:
        print("WARNING: mixed speedup below the acceptance bar",
              file=sys.stderr)
    if not obs_ok:
        print("WARNING: policies disagree beyond tolerance",
              file=sys.stderr)

    print("hostile run (tight drift tolerance, expect promotion) ...")
    hostile = hostile_run(size, n_slices, seed, warmup=2)
    promotion_ok = (
        hostile["final_precision"] == "full64" and hostile["promotions"] >= 1
    )
    print(
        f"  configured {hostile['configured_precision']}, finished "
        f"{hostile['final_precision']} after {hostile['promotions']} "
        f"promotion(s)"
    )
    if not promotion_ok:
        print("WARNING: hostile run did not promote to full64",
              file=sys.stderr)

    doc = {
        "quick": args.quick,
        "workload": {
            "lattice": f"{size}x{size}",
            "n_slices": n_slices,
            "beta": n_slices * 0.125,
            "u": 4.0,
            "seed": seed,
            "warmup_sweeps": warmup,
            "measurement_sweeps": sweeps,
            "backend": "gpu-sim",
        },
        "runs": runs,
        "model_time_speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "speedup_ok": speedup_ok,
        "observable_deviation": obs_dev,
        "observable_tolerance": OBS_TOL,
        "observables_ok": obs_ok,
        "hostile": hostile,
        "promotion_ok": promotion_ok,
    }
    args.output.parent.mkdir(exist_ok=True)
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    if not args.no_root_copy:
        shutil.copyfile(args.output, ROOT_COPY)
        print(f"wrote {ROOT_COPY}")
    return 0 if (speedup_ok and obs_ok and promotion_ok) else 1


if __name__ == "__main__":
    sys.exit(main())
