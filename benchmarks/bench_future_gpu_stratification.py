"""Future-work experiment: Algorithm 3 run on the (simulated) GPU.

The paper closes Sec. VI with "our future research direction is to
implement most of the stratification procedure on the GPU using the
recent advances for the QR decomposition on these systems". This bench
executes that projection on the simulated device
(:mod:`repro.gpu.stratification`) and quantifies, per matrix size:

* correctness against the CPU pipeline (must be ~1e-10),
* projected GPU time (virtual clock) vs measured CPU time,
* host<->device traffic per chain step — O(n) beyond the factor
  uploads, the property pre-pivoting buys (QP3 would need a pivot
  round-trip per column).

Expected shape: the device loses at small n (launch latency) and wins
increasingly past n ~ a few hundred, mirroring Fig 9/10's crossovers.
"""

import numpy as np
import pytest

from bench_common import format_table, make_field_engine, time_call
from repro.core import stratified_inverse
from repro.gpu import SimulatedDevice, gpu_stratified_inverse

SIZES = [(6, 6), (10, 10), (14, 14), (18, 18)]
L = 80
K = 10


def _chain(lx, ly):
    factory, field, engine = make_field_engine(
        lx, ly, u=6.0, beta=10.0, n_slices=L, cluster=K, seed=lx
    )
    return engine.cache.chain(1, 0)


def test_future_gpu_stratification(benchmark, report):
    rows = []
    ratios = []
    for lx, ly in SIZES:
        n = lx * ly
        chain = _chain(lx, ly)
        g_cpu = stratified_inverse(chain, method="prepivot")
        t_cpu = time_call(stratified_inverse, chain, method="prepivot")

        dev = SimulatedDevice()
        g_gpu = gpu_stratified_inverse(dev, chain, block=min(64, n))
        err = float(
            np.linalg.norm(g_gpu - g_cpu) / np.linalg.norm(g_cpu)
        )
        t_gpu = dev.elapsed
        ratios.append(t_cpu / t_gpu)
        rows.append(
            [
                n,
                f"{t_cpu*1e3:.2f}",
                f"{t_gpu*1e3:.2f}",
                f"{t_cpu/t_gpu:.2f}x",
                f"{err:.1e}",
            ]
        )
        assert err < 1e-8, (n, err)
    report(
        "future_gpu_stratification",
        format_table(
            ["N", "CPU ms (measured)", "GPU ms (model)", "speedup", "rel err"],
            rows,
        ),
    )

    # projected advantage must grow with matrix size
    assert ratios[-1] > ratios[0]

    benchmark(stratified_inverse, _chain(6, 6), method="prepivot")
