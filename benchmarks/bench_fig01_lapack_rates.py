"""Figure 1: GFlops of DGEMM vs DGEQRF vs DGEQP3 across matrix sizes.

The paper's motivating measurement: matrix-matrix multiply runs near
machine peak even at DQMC sizes, unpivoted QR reaches a large fraction of
it, and pivoted QR is far behind because its pivot updates are level-2.
Here the same three kernels are timed through numpy/scipy's BLAS/LAPACK
and reported as GFlops against the standard nominal flop counts.

Expected shape (asserted): rate(DGEMM) > rate(DGEQRF) > rate(DGEQP3) at
the largest size, with DGEQP3 under half of DGEMM.
"""

import numpy as np
import pytest
import scipy.linalg as sla

from bench_common import format_table, time_call
from repro.linalg import gemm_flops, qr_flops, qrp_flops

SIZES = [64, 128, 256, 384, 512]


def dgemm(a, b):
    return a @ b


def dgeqrf(a):
    # mode="raw" is the bare LAPACK DGEQRF call (no Q formation), the
    # routine Figure 1 actually plots
    return sla.qr(a, mode="raw", check_finite=False)


def dgeqp3(a):
    return sla.qr(a, mode="raw", pivoting=True, check_finite=False)


def _rates(n, rng):
    a = rng.normal(size=(n, n))
    b = rng.normal(size=(n, n))
    t_gemm = time_call(dgemm, a, b)
    t_qr = time_call(dgeqrf, a)
    t_qrp = time_call(dgeqp3, a)
    return (
        gemm_flops(n, n, n) / t_gemm / 1e9,
        # factorization-only counts (no explicit Q) match LAPACK timing
        # convention for this comparison
        (2 * n**3 * 2 / 3) / t_qr / 1e9,
        (2 * n**3 * 2 / 3) / t_qrp / 1e9,
    )


@pytest.mark.parametrize("n", [256, 512])
@pytest.mark.parametrize("routine", ["dgemm", "dgeqrf", "dgeqp3"])
def test_kernel_rates(benchmark, n, routine):
    """Headline timings for the three kernels at two representative sizes."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=(n, n))
    b = rng.normal(size=(n, n))
    if routine == "dgemm":
        benchmark(dgemm, a, b)
        nominal = gemm_flops(n, n, n)
    elif routine == "dgeqrf":
        benchmark(dgeqrf, a)
        nominal = qr_flops(n, n)
    else:
        benchmark(dgeqp3, a)
        nominal = qrp_flops(n, n)
    benchmark.extra_info["gflops"] = nominal / benchmark.stats["mean"] / 1e9


def test_fig1_series(benchmark, report):
    """The full Figure 1 series + the paper's qualitative assertions."""
    rng = np.random.default_rng(1)
    rows = []
    rates = {}
    for n in SIZES:
        g, q, p = _rates(n, rng)
        rates[n] = (g, q, p)
        rows.append([n, f"{g:.1f}", f"{q:.1f}", f"{p:.1f}"])
    text = format_table(
        ["n", "DGEMM GF/s", "DGEQRF GF/s", "DGEQP3 GF/s"], rows
    )
    report("fig01_lapack_rates", text)

    g, q, p = rates[SIZES[-1]]
    assert g > q > p, "paper ordering DGEMM > DGEQRF > DGEQP3 violated"
    assert p < 0.5 * g, "QP3 should run far below GEMM (level-2 pivoting)"

    # benchmark the largest-size GEMM as this test's headline number
    a = rng.normal(size=(SIZES[-1], SIZES[-1]))
    benchmark(dgemm, a, a)
