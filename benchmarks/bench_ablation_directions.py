"""Ablation: sweep-direction alternation vs Monte Carlo autocorrelation.

QUEST alternates forward and backward sweeps through imaginary time.
This bench measures the integrated autocorrelation time of the
antiferromagnetic structure factor under forward-only vs alternating
sweeps on identical models, plus the cost side (a backward sweep does
the same work as a forward one — asserted within noise).
"""

import numpy as np
import pytest

from bench_common import format_table, time_call
from repro import HubbardModel, Simulation, SquareLattice
from repro.measure import integrated_autocorrelation_time

MODEL_ARGS = dict(u=4.0, beta=3.0, n_slices=24)
SWEEPS = 220


def _tau_for(alternate: bool, seed: int) -> float:
    model = HubbardModel(SquareLattice(4, 4), **MODEL_ARGS)
    sim = Simulation(
        model, seed=seed, cluster_size=8,
        alternate_directions=alternate,
    )
    sim.warmup(20)
    sim.measure_sweeps(SWEEPS)
    series = sim.collector.accumulator.series("af_structure_factor")
    return integrated_autocorrelation_time(series)


def test_ablation_directions(benchmark, report):
    taus = {"forward-only": [], "alternating": []}
    for seed in (1, 2, 3):
        taus["forward-only"].append(_tau_for(False, seed))
        taus["alternating"].append(_tau_for(True, seed))
    rows = [
        [mode, *(f"{t:.2f}" for t in vals),
         f"{np.mean(vals):.2f}"]
        for mode, vals in taus.items()
    ]
    report(
        "ablation_directions",
        format_table(
            ["mode", "tau (seed 1)", "tau (seed 2)", "tau (seed 3)", "mean"],
            rows,
        ),
    )

    # alternation must not make autocorrelation meaningfully worse; the
    # measured means typically favor it (stochastic at bench lengths, so
    # a generous one-sided bound)
    assert np.mean(taus["alternating"]) < 2.0 * np.mean(taus["forward-only"])

    # equal cost per sweep within noise
    model = HubbardModel(SquareLattice(4, 4), **MODEL_ARGS)
    sim_f = Simulation(model, seed=9, cluster_size=8)
    sim_a = Simulation(model, seed=9, cluster_size=8, alternate_directions=True)
    sim_f.warmup(2)
    sim_a.warmup(2)
    t_f = time_call(lambda: sim_f.warmup(4), repeats=1)
    t_a = time_call(lambda: sim_a.warmup(4), repeats=1)
    assert t_a < 1.5 * t_f

    benchmark(_tau_for, True, 4)
