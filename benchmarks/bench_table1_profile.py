"""Table I: percentage of execution time per simulation phase vs N.

The paper profiles full QUEST runs into five phases — delayed rank-1
update, stratification, clustering, wrapping, physical measurements —
and reports shares like 14/44/12/12/18 % at N = 1024, with the Green's
function work (stratification + clustering + wrapping) around 65%.

Bench scale: N = 16..100, short runs, same phase accounting through
:class:`repro.profiling.PhaseProfiler`. Asserted shape: stratification
is the single largest phase at the largest N, every phase is a
non-trivial share, and the shares sum to ~100%.

The phase numbers are read back *through the telemetry pipeline* (the
profiler's registry-export hook) rather than straight off the profiler,
so this bench also pins the contract that a JSONL telemetry archive
carries everything needed to reconstruct Table I offline
(``repro telemetry-report``).
"""

import pytest

from bench_common import format_table
from repro import HubbardModel, Simulation, SquareLattice, Telemetry
from repro.profiling import PHASES

SIZES = [4, 8, 12, 16]


def _profile(size: int):
    model = HubbardModel(
        SquareLattice(size, size), u=4.0, beta=4.0, n_slices=32
    )
    sweeps = (2, 4) if size <= 12 else (1, 2)
    telemetry = Telemetry(writer=None, snapshot_every=0)
    sim = Simulation(model, seed=size, cluster_size=8, telemetry=telemetry)
    sim.run(warmup_sweeps=sweeps[0], measurement_sweeps=sweeps[1])

    # Recover the Table I data from the metrics registry, as
    # `repro telemetry-report` would from the archived snapshot.
    telemetry.snapshot()
    registry = telemetry.registry
    seconds = {
        phase: registry.gauge(f"phase.{phase}.seconds")
        for phase in sim.profiler.seconds
    }
    for phase, sec in seconds.items():
        assert sec == pytest.approx(sim.profiler.seconds[phase]), phase
    total = sum(seconds.values())
    return {k: 100.0 * v / total for k, v in seconds.items()}


def test_table1_phase_breakdown(benchmark, report):
    profiles = {s: _profile(s) for s in SIZES}
    rows = []
    for phase in PHASES:
        rows.append(
            [phase]
            + [f"{profiles[s].get(phase, 0.0):.1f}%" for s in SIZES]
        )
    text = format_table(
        ["phase \\ N"] + [str(s * s) for s in SIZES], rows
    )
    report("table1_profile", text)

    for s, pct in profiles.items():
        assert sum(pct.values()) == pytest.approx(100.0), s
        for phase in PHASES:
            assert pct.get(phase, 0.0) > 0.2, (s, phase)

    largest = profiles[SIZES[-1]]
    # Among the matrix phases, stratification must be the largest — the
    # paper's ~44% row. (The delayed-update share is inflated here by
    # Python interpreter overhead in the site loop, a substrate artifact
    # documented in EXPERIMENTS.md; it shrinks with N as the matrix work
    # grows N^3, which the SIZES trend shows.)
    matrix_phases = ("stratification", "clustering", "wrapping", "measurements")
    assert largest["stratification"] == max(
        largest[p] for p in matrix_phases
    ), "stratification should dominate the matrix phases (Table I: ~44%)"
    greens_total = (
        largest["stratification"] + largest["clustering"] + largest["wrapping"]
    )
    assert greens_total > 40.0, (
        "Green's function work should be the bulk of the run (paper: ~65%)"
    )
    # the paper's trend: the delayed-update share falls once N^3 work grows
    assert (
        profiles[SIZES[-1]]["delayed_update"]
        < profiles[SIZES[1]]["delayed_update"]
    )

    benchmark(_profile, SIZES[0])
