"""Streaming-statistics benchmark: memory scaling + adaptive stopping.

Two claims of the ``repro.stats`` subsystem, measured:

1. **O(log n) memory.** The streaming log-binned accumulator's retained
   state grows with the *logarithm* of the sample count while the
   post-hoc ``Accumulator`` grows linearly — demonstrated on identical
   AR(1) scalar + array series, with the streaming mean/error checked
   against ``binned_statistics`` at floating-point tolerance (the bin
   boundaries coincide whenever n = n_bins * 2^k).

2. **Error-targeted stopping.** A 6x6, beta = 3 run under a
   ``RunController`` (``--target-error`` semantics) stops as soon as the
   target observable's relative error meets the target, against a
   fixed-budget twin of the same seeded workload — the adaptive run must
   meet its target without exceeding the budget.

Emits ``benchmarks/results/BENCH_stats.json``. Standalone on purpose
(not a pytest-benchmark case): CI runs it directly to publish the JSON
artifact. ``--quick`` shrinks to a 4x4 smoke scale.

Usage::

    PYTHONPATH=src python benchmarks/bench_stats.py --quick
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

import numpy as np

from bench_common import format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: bin count used for every estimate; sample counts are n_bins * 2^k so
#: the streaming and post-hoc bin boundaries coincide exactly.
N_BINS = 16

#: fp-agreement tolerance for mean/error parity at coinciding boundaries
PARITY_RTOL = 1e-10


def _ar1(n: int, rho: float, rng, shape=()) -> np.ndarray:
    noise = rng.standard_normal((n,) + tuple(shape))
    out = np.empty_like(noise)
    out[0] = noise[0]
    for t in range(1, n):
        out[t] = rho * out[t - 1] + noise[t]
    return out


def _posthoc_floats(acc) -> int:
    return sum(int(np.asarray(acc.series(name)).size) for name in acc.names())


def _streaming_floats(acc) -> int:
    return sum(int(a.size) for a in acc.state_arrays().values())


def memory_scaling(sample_counts, array_shape) -> dict:
    """Feed identical series to both accumulator types; record retained
    state size and the streaming-vs-post-hoc estimate deviation."""
    from repro.measure import Accumulator, binned_statistics
    from repro.stats import StreamingAccumulator

    rows = []
    for n in sample_counts:
        rng = np.random.default_rng(42)
        scalars = _ar1(n, 0.7, rng)
        arrays = _ar1(n, 0.7, rng, shape=array_shape)

        posthoc, streaming = Accumulator(), StreamingAccumulator()
        for t in range(n):
            posthoc.add("scalar", scalars[t])
            posthoc.add("array", arrays[t])
            streaming.add("scalar", scalars[t])
            streaming.add("array", arrays[t])

        ref = binned_statistics(scalars, n_bins=N_BINS)
        est = streaming.estimate("scalar", n_bins=N_BINS)
        rows.append(
            {
                "n_samples": n,
                "posthoc_floats": _posthoc_floats(posthoc),
                "streaming_floats": _streaming_floats(streaming),
                "mean_rel_diff": abs(est.mean - ref.mean)
                / max(abs(ref.mean), 1e-300),
                "error_rel_diff": abs(est.error - ref.error)
                / max(abs(ref.error), 1e-300),
            }
        )

    first, last = rows[0], rows[-1]
    n_ratio = last["n_samples"] / first["n_samples"]
    posthoc_ratio = last["posthoc_floats"] / first["posthoc_floats"]
    streaming_ratio = last["streaming_floats"] / first["streaming_floats"]
    # O(log n): growing n by 2^k adds ~k Welford levels per observable,
    # nowhere near the 2^k factor the retained-series path pays.
    log_memory_ok = streaming_ratio <= math.log2(n_ratio)
    parity_ok = all(
        r["mean_rel_diff"] <= PARITY_RTOL and r["error_rel_diff"] <= PARITY_RTOL
        for r in rows
    )
    return {
        "array_shape": list(array_shape),
        "n_bins": N_BINS,
        "rows": rows,
        "posthoc_growth": posthoc_ratio,
        "streaming_growth": streaming_ratio,
        "n_growth": n_ratio,
        "log_memory_ok": log_memory_ok,
        "parity_rtol": PARITY_RTOL,
        "parity_ok": parity_ok,
    }


def _simulation(size, n_slices, seed, streaming):
    from repro import HubbardModel, Simulation, SquareLattice

    model = HubbardModel(
        SquareLattice(size, size), u=4.0, beta=n_slices * 0.125,
        n_slices=n_slices,
    )
    return Simulation(
        model, seed=seed, cluster_size=8, measure_arrays=False,
        streaming=streaming,
    )


def adaptive_vs_fixed(size, n_slices, warmup, budget, target_error) -> dict:
    """The same seeded workload twice: fixed budget vs run-to-target."""
    from repro.stats import RunController

    fixed = _simulation(size, n_slices, seed=11, streaming=False)
    t0 = time.perf_counter()
    fixed.warmup(warmup)
    fixed.measure_sweeps(budget)
    fixed_wall = time.perf_counter() - t0
    fixed_density = fixed.collector.results()["density"]

    adaptive = _simulation(size, n_slices, seed=11, streaming=True)
    adaptive.attach_controller(
        RunController(
            target_observable="density", target_error=target_error,
            check_every=8, min_samples=2 * N_BINS,
        )
    )
    t0 = time.perf_counter()
    adaptive.warmup(warmup)
    adaptive.measure_until(budget)
    adaptive_wall = time.perf_counter() - t0
    summary = adaptive.controller.summary()

    return {
        "workload": {
            "lattice": f"{size}x{size}",
            "n_slices": n_slices,
            "beta": n_slices * 0.125,
            "u": 4.0,
            "seed": 11,
            "warmup_sweeps": warmup,
            "budget_sweeps": budget,
            "target_error": target_error,
        },
        "fixed": {
            "measured_sweeps": fixed.measured_sweeps,
            "wall_seconds": fixed_wall,
            "density_mean": float(fixed_density.mean),
            "density_error": float(fixed_density.error),
        },
        "adaptive": {
            "measured_sweeps": adaptive.measured_sweeps,
            "wall_seconds": adaptive_wall,
            "control": summary,
        },
        "stopped_within_budget": adaptive.measured_sweeps <= budget,
        "target_met": bool(summary["target_met"]),
        "sweeps_saved": budget - adaptive.measured_sweeps,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-scale workload (4x4, short series) instead of bench scale",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULTS_DIR / "BENCH_stats.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        counts = [N_BINS * 2 ** k for k in (4, 6, 8, 10)]
        shape, size, n_slices, warmup, budget = (16,), 4, 16, 10, 160
    else:
        counts = [N_BINS * 2 ** k for k in (4, 7, 10, 13)]
        shape, size, n_slices, warmup, budget = (36,), 6, 24, 20, 240

    print("memory scaling (identical AR(1) series into both paths) ...")
    mem = memory_scaling(counts, shape)
    print(format_table(
        ["n", "post-hoc floats", "streaming floats",
         "mean rel diff", "err rel diff"],
        [
            [r["n_samples"], r["posthoc_floats"], r["streaming_floats"],
             f"{r['mean_rel_diff']:.1e}", f"{r['error_rel_diff']:.1e}"]
            for r in mem["rows"]
        ],
    ))
    print(
        f"growth over a {mem['n_growth']:.0f}x sample-count increase: "
        f"post-hoc {mem['posthoc_growth']:.0f}x, "
        f"streaming {mem['streaming_growth']:.2f}x "
        f"(log2 bound {math.log2(mem['n_growth']):.1f}) -> "
        f"{'O(log n) holds' if mem['log_memory_ok'] else 'FAIL'}"
    )

    print("adaptive stop vs fixed budget ...")
    run = adaptive_vs_fixed(
        size, n_slices, warmup, budget,
        target_error=0.004 if args.quick else 0.002,
    )
    ctl = run["adaptive"]["control"]
    print(format_table(
        ["run", "sweeps", "seconds"],
        [
            ["fixed", run["fixed"]["measured_sweeps"],
             f"{run['fixed']['wall_seconds']:.2f}"],
            ["adaptive", run["adaptive"]["measured_sweeps"],
             f"{run['adaptive']['wall_seconds']:.2f}"],
        ],
    ))
    print(
        f"target rel. error {run['workload']['target_error']:g} on density: "
        f"reached {ctl['relative_error']:.2e} after "
        f"{run['adaptive']['measured_sweeps']} of {budget} budget sweeps "
        f"({ctl['discarded']} discarded at equilibration) -> "
        f"{'target met' if run['target_met'] else 'TARGET NOT MET'}"
    )

    ok = mem["log_memory_ok"] and mem["parity_ok"] and run["target_met"] \
        and run["stopped_within_budget"]
    if not mem["parity_ok"]:
        print("WARNING: streaming estimate deviates from binned_statistics",
              file=sys.stderr)
    if not run["target_met"]:
        print("WARNING: adaptive run exhausted its budget short of target",
              file=sys.stderr)

    doc = {
        "quick": args.quick,
        "memory_scaling": mem,
        "adaptive_vs_fixed": run,
        "all_ok": ok,
    }
    args.output.parent.mkdir(exist_ok=True)
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
