"""Figure 7: real-space C_zz(r) chessboard, small vs large lattice.

The paper shows the antiferromagnetic checkerboard of the z-spin
correlation on 12x12 vs 32x32 at rho = 1, U = 2, beta = 32, and argues
the larger lattice pins down the long-distance asymptote
C_zz(Lx/2, Ly/2) used for bulk-order extrapolation.

Bench scale: 4x4 vs 8x8 at U = 4, beta = 4 (stronger U compensates the
smaller beta so the pattern is unambiguous at short runs). Asserted
shape: strict sublattice sign alternation near the origin, positive
longest-distance correlation on the same sublattice, and a local moment
C_zz(0) enhanced above the free value 1/2.
"""

import numpy as np
import pytest

from bench_common import format_table
from repro import HubbardModel, Simulation, SquareLattice
from repro.measure import correlation_grid, longest_distance_correlation

SIZES = [4, 8]


def _run(size: int) -> np.ndarray:
    lat = SquareLattice(size, size)
    model = HubbardModel(lat, u=4.0, beta=4.0, n_slices=32)
    sim = Simulation(model, seed=70 + size, cluster_size=8)
    res = sim.run(warmup_sweeps=15, measurement_sweeps=45)
    return np.asarray(res.observables["spin_zz"].mean)


def _grid_text(lat, czz) -> str:
    grid = correlation_grid(lat, czz)
    ly, lx = grid.shape
    dx = [x - (lx // 2 - 1) for x in range(lx)]
    dy = [y - (ly // 2 - 1) for y in range(ly)]
    header = ["dy\\dx"] + [f"{d:+d}" for d in dx]
    rows = [
        [f"{dy[i]:+d}"] + [f"{grid[i, j]:+.4f}" for j in range(lx)]
        for i in range(ly)
    ]
    return format_table(header, rows)


def test_fig7_spin_chessboard(benchmark, report):
    sections = []
    for size in SIZES:
        lat = SquareLattice(size, size)
        czz = _run(size)
        sections.append(f"# {size}x{size} C_zz(r)\n" + _grid_text(lat, czz))

        # local moment enhanced over the U = 0 value 0.5
        assert czz[0] > 0.5, size
        # chessboard: sign matches sublattice parity for near displacements
        for r in range(1, lat.n_sites):
            x, y = lat.coords(r)
            dx = min(x, size - x)
            dy = min(y, size - y)
            if dx + dy > 2:
                continue  # long distances are noisy at bench scale
            parity = (-1.0) ** (x + y)
            assert np.sign(czz[r]) == parity, (size, (x, y), czz[r])
        # longest-distance correlation: same sublattice -> positive
        assert longest_distance_correlation(lat, czz) > 0, size

    report("fig07_spin", "\n\n".join(sections))

    benchmark(_run, 4)
