"""Figure 8: whole-simulation time vs number of sites, against N^3 nominal.

The paper times full DQMC runs (1000 + 2000 sweeps) from N = 256 to
N = 1024 and finds the measured growth *slower* than the nominal N^3
prediction, because BLAS efficiency improves with matrix size over this
range. The same effect appears at bench scale: per-sweep times from
N = 16 to N = 144 grow by less than the (N/N0)^3 nominal ratio.
"""

import numpy as np
import pytest

from bench_common import format_table, time_call
from repro import HubbardModel, Simulation, SquareLattice

SIZES = [4, 6, 8, 10, 12]
L = 32
SWEEPS = 3


def _sweep_time(size: int) -> float:
    model = HubbardModel(
        SquareLattice(size, size), u=4.0, beta=4.0, n_slices=L
    )
    sim = Simulation(model, seed=size, cluster_size=8, measure_arrays=False)
    sim.warmup(1)  # populate caches, thermalize buffers
    return time_call(lambda: sim.warmup(SWEEPS), repeats=1) / SWEEPS


def test_fig8_scaling(benchmark, report):
    times = {s: _sweep_time(s) for s in SIZES}
    n0 = SIZES[0] ** 2
    t0 = times[SIZES[0]]
    rows = []
    for s in SIZES:
        n = s * s
        nominal = t0 * (n / n0) ** 3
        rows.append(
            [n, f"{times[s]*1e3:.1f}", f"{nominal*1e3:.1f}",
             f"{times[s]/nominal:.3f}"]
        )
    text = format_table(
        ["N", "measured ms/sweep", "nominal N^3 ms", "measured/nominal"], rows
    )
    report("fig08_scaling", text)

    # the paper's observation: measured growth beats the nominal N^3
    # prediction (28x instead of 64x for 4x the sites)
    n_last = SIZES[-1] ** 2
    nominal_last = t0 * (n_last / n0) ** 3
    assert times[SIZES[-1]] < nominal_last, (
        "large-N runs should beat the N^3 extrapolation from small N"
    )
    # ... but the cost must still grow substantially (it *is* ~N^3 work)
    assert times[SIZES[-1]] > 5 * t0

    benchmark(_sweep_time, SIZES[0])
