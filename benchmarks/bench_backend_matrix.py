"""Backend matrix benchmark: one pipeline, every execution backend.

Runs the same seeded DQMC workload through each available backend and
emits ``benchmarks/results/BENCH_backends.json`` with, per backend:

* wall-clock seconds of the run,
* the nominal-flop GFlops rate (wall-clock divided into the FLOP
  ledger, same convention as the Fig. 4 bench),
* Table-I-style phase shares (stratification / clustering / wrapping /
  delayed update / measurements),
* dispatch counts from the backend's own telemetry.

Standalone on purpose (not a pytest-benchmark case): CI runs it
directly to publish the JSON artifact. ``--quick`` shrinks the workload
to seconds for the CI leg; the defaults give steadier numbers locally.

Usage::

    PYTHONPATH=src python benchmarks/bench_backend_matrix.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def run_backend(name: str, size: int, n_slices: int, sweeps: int) -> dict:
    from repro import HubbardModel, Simulation, SquareLattice
    from repro.linalg import flops

    model = HubbardModel(
        SquareLattice(size, size), u=4.0, beta=n_slices * 0.125,
        n_slices=n_slices,
    )
    sim = Simulation(model, seed=11, cluster_size=8, backend=name)
    t0 = time.perf_counter()
    with flops.tally() as tally:
        sim.warmup(max(1, sweeps // 4))
        sim.measure_sweeps(sweeps)
    wall = time.perf_counter() - t0

    phase_seconds = dict(sim.profiler.seconds)
    total_phase = sum(phase_seconds.values()) or 1.0
    return {
        "backend": name,
        "n_sites": model.n_sites,
        "n_slices": n_slices,
        "sweeps": sweeps,
        "wall_seconds": wall,
        "gflops": tally.gflops_rate(wall),
        "total_gflop": tally.total_flops / 1e9,
        "phase_share_pct": {
            k: 100.0 * v / total_phase for k, v in sorted(phase_seconds.items())
        },
        "dispatch": sim.engine.backend.stats(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-scale workload (4x4, few sweeps) instead of bench scale",
    )
    parser.add_argument(
        "--backends", nargs="*", default=None,
        help="backend names to run (default: every available backend)",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULTS_DIR / "BENCH_backends.json",
    )
    args = parser.parse_args(argv)

    from repro.backends import available_backends

    names = args.backends or list(available_backends())
    size, n_slices, sweeps = (4, 16, 4) if args.quick else (8, 40, 10)

    results = []
    for name in names:
        print(f"[{name}] N={size * size}, L={n_slices}, {sweeps} sweeps ...")
        entry = run_backend(name, size, n_slices, sweeps)
        print(
            f"[{name}] {entry['wall_seconds']:.3f} s, "
            f"{entry['gflops']:.2f} GFlops (nominal)"
        )
        results.append(entry)

    # The simulated backends must agree bitwise, so the flop totals agree
    # too; a mismatch means a backend ran a different operation mix.
    totals = {r["backend"]: r["total_gflop"] for r in results}
    reference = totals.get("numpy")
    if reference is not None:
        for name, total in totals.items():
            if name != "cupy" and abs(total - reference) > 1e-9 * reference:
                print(
                    f"WARNING: {name} flop total {total} != numpy {reference}",
                    file=sys.stderr,
                )

    args.output.parent.mkdir(exist_ok=True)
    args.output.write_text(
        json.dumps(
            {"quick": args.quick, "results": results}, indent=2, sort_keys=True
        )
        + "\n"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
