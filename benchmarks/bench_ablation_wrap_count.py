"""Ablation: wrap count l — drift of the wrapped Green's function.

The paper (Sec. III-B1) wraps l ~ 10 times between fresh
stratifications. This bench measures the relative drift of the wrapped G
against the exactly stratified one as a function of the number of
consecutive wraps, at two interaction strengths.

Measured behaviour (and the reason l = 10 is the universal choice): the
drift is harmless through l ~ 10 (1e-12 .. 1e-8 here), grows roughly
multiplicatively with each wrap — every wrap amplifies roundoff by
~cond(B)^2 — and *detonates* past l ~ 20, reaching O(1) and beyond.
Wrapping without periodic re-stratification is not an optimization, it
is a correctness requirement.
"""

import numpy as np
import pytest

from bench_common import format_table, make_field_engine

WRAPS = [1, 5, 10, 20, 40]


def test_ablation_wrap_count(benchmark, report):
    rows = []
    drift_at = {}
    for u in (2.0, 8.0):
        factory, field, engine = make_field_engine(
            6, 6, u=u, n_slices=40, cluster=10, seed=3
        )
        drifts = [engine.wrap_drift(1, n_wraps=w) for w in WRAPS]
        drift_at[u] = dict(zip(WRAPS, drifts))
        rows.append([f"U={u:g}"] + [f"{d:.2e}" for d in drifts])
    report(
        "ablation_wrap_count",
        format_table(["U"] + [f"l={w}" for w in WRAPS], rows),
    )

    for u, d in drift_at.items():
        assert d[10] < 1e-6, (u, d[10])  # the paper's l = 10 is safe
        assert d[40] > d[10] > d[1], "drift accumulates with wraps"
    assert drift_at[8.0][10] > drift_at[2.0][10], (
        "stronger coupling drifts faster"
    )
    # past the safe window the wrapped G is garbage — the reason the
    # periodic re-stratification exists at all
    assert drift_at[8.0][40] > 1.0

    factory, field, engine = make_field_engine(6, 6, u=4.0, n_slices=40, cluster=10)
    benchmark(engine.wrap_drift, 1, 10)
