"""Ablation: ensemble (multi-chain) parallel sampling.

The paper's framing: single-chain DQMC cannot exploit distributed
parallelism, but independent Markov chains parallelize perfectly. This
bench quantifies both halves at bench scale:

* statistical: the merged error bar shrinks ~ 1/sqrt(chains) at fixed
  per-chain length;
* wall-clock: threaded chains overlap their BLAS work, so the ensemble
  finishes in well under chains x single-chain time.
"""

import numpy as np
import pytest

from bench_common import format_table, time_call
from repro import HubbardModel, SquareLattice
from repro.dqmc import run_ensemble

MODEL = HubbardModel(SquareLattice(4, 4), u=4.0, beta=2.0, n_slices=16)
SWEEPS = 24


def _run(n_chains, max_workers):
    return run_ensemble(
        MODEL,
        n_chains=n_chains,
        warmup_sweeps=6,
        measurement_sweeps=SWEEPS,
        cluster_size=8,
        max_workers=max_workers,
        measure_arrays=False,
    )


def test_ensemble_error_scaling(benchmark, report):
    rows = []
    errors = {}
    for chains in (1, 2, 4, 8):
        res = _run(chains, max_workers=1)
        err = float(res.observables["double_occupancy"].error)
        errors[chains] = err
        rows.append(
            [chains, chains * SWEEPS, f"{err:.5f}",
             f"{err * np.sqrt(chains):.5f}"]
        )
    report(
        "ablation_ensemble_error",
        format_table(
            ["chains", "total sweeps", "error", "error*sqrt(chains)"], rows
        ),
    )
    # 1/sqrt scaling within a loose stochastic factor
    assert errors[8] < errors[1]
    assert errors[8] > errors[1] / 8.0  # not impossibly good

    benchmark(_run, 2, 1)


def test_ensemble_thread_speedup(benchmark, report):
    chains = 4
    t_serial = time_call(_run, chains, 1, repeats=1)
    t_threaded = time_call(_run, chains, chains, repeats=1)
    report(
        "ablation_ensemble_speedup",
        format_table(
            ["mode", "seconds"],
            [["serial", f"{t_serial:.2f}"], ["threaded", f"{t_threaded:.2f}"],
             ["speedup", f"{t_serial / t_threaded:.2f}x"]],
        ),
    )
    # identical physics either way is covered by unit tests; here we only
    # require that threading does not *hurt* beyond scheduling noise
    assert t_threaded < t_serial * 1.2

    benchmark(_run, 2, 2)
