"""Figure 9: GPU GFlops of matrix clustering (Alg 4/5) and wrapping (Alg 6/7).

The paper measures, on a Tesla C2050 including transfer time, that
clustering approaches GPU DGEMM speed (k products amortize one transfer)
while wrapping — two GEMMs per G round-trip — lands well below it but
still far above CPU DGEMM, improving with matrix size.

GPU times here come from the simulated device's calibrated virtual clock
(see DESIGN.md's substitution table); the numerics are executed for real
so the rates correspond to verified-correct kernels. CPU DGEMM is
measured on the host for the comparison line.

Asserted shape, at the largest size:
rate(GPU dgemm) >= rate(clustering) > rate(wrapping) > rate(CPU dgemm),
with clustering within 2x of GPU DGEMM.
"""

import numpy as np
import pytest

from bench_common import format_table, make_field_engine, time_call
from repro.gpu import GPUPropagatorOps, SimulatedDevice, TESLA_C2050
from repro.linalg import gemm_flops

SIZES = [128, 256, 512, 1024]
K = 10


def _fake_propagators(n, rng):
    """Random orthogonal-ish stand-ins for exp(-+dtau K) at size n."""
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    return q, q.T


def _cluster_rate(n, rng) -> float:
    expk, inv_expk = _fake_propagators(n, rng)
    dev = SimulatedDevice(TESLA_C2050)
    ops = GPUPropagatorOps(dev, expk, inv_expk, fused=True)
    vs = [np.exp(rng.normal(size=n) * 0.3) for _ in range(K)]
    dev.reset_clock()
    ops.cluster_product(vs)
    nominal = (K - 1) * gemm_flops(n, n, n) + K * n * n
    return nominal / dev.elapsed / 1e9


def _wrap_rate(n, rng) -> float:
    expk, inv_expk = _fake_propagators(n, rng)
    dev = SimulatedDevice(TESLA_C2050)
    ops = GPUPropagatorOps(dev, expk, inv_expk, fused=True)
    g = rng.normal(size=(n, n))
    v = np.exp(rng.normal(size=n) * 0.3)
    dev.reset_clock()
    ops.wrap(g, v)
    nominal = 2 * gemm_flops(n, n, n) + 2 * n * n
    return nominal / dev.elapsed / 1e9


def _gpu_dgemm_rate(n) -> float:
    return 2.0 * n**3 / TESLA_C2050.time_gemm(n, n, n) / 1e9


def _cpu_dgemm_rate(n, rng) -> float:
    a = rng.normal(size=(n, n))
    return gemm_flops(n, n, n) / time_call(lambda: a @ a) / 1e9


def test_fig9_gpu_kernel_rates(benchmark, report):
    rng = np.random.default_rng(9)
    rows = []
    last = None
    for n in SIZES:
        r_cluster = _cluster_rate(n, rng)
        r_wrap = _wrap_rate(n, rng)
        r_gpu = _gpu_dgemm_rate(n)
        r_cpu = _cpu_dgemm_rate(n, rng)
        rows.append(
            [n, f"{r_cluster:.0f}", f"{r_wrap:.0f}", f"{r_gpu:.0f}", f"{r_cpu:.0f}"]
        )
        last = (r_cluster, r_wrap, r_gpu, r_cpu)
    text = format_table(
        ["n", "clustering GF/s", "wrapping GF/s",
         "GPU DGEMM GF/s", "CPU DGEMM GF/s (measured)"],
        rows,
    )
    report("fig09_gpu_kernels", text)

    r_cluster, r_wrap, r_gpu, r_cpu = last
    assert r_gpu >= r_cluster > r_wrap, "paper's kernel ordering"
    assert r_cluster > 0.5 * r_gpu, "clustering approaches GPU DGEMM"
    assert r_wrap > r_cpu, "GPU wrapping still beats CPU DGEMM"

    # wrapping's rate must improve with n (transfer amortization)
    rates = [float(r[2]) for r in rows]
    assert rates == sorted(rates)

    benchmark(_cluster_rate, 256, np.random.default_rng(10))
