"""Shared non-fixture helpers for the benchmark suite."""

from __future__ import annotations

import time

import numpy as np


def time_call(fn, *args, repeats: int = 3, **kwargs) -> float:
    """Best-of-N wall-clock seconds for one call (series plotting only;
    headline numbers go through pytest-benchmark)."""
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def make_field_engine(
    lx, ly, *, u=2.0, beta=None, n_slices=40, cluster=10, seed=0,
    method="prepivot", profiler=None,
):
    """A ready-to-run (factory, field, engine) triple at bench scale."""
    from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
    from repro.core import GreensFunctionEngine

    beta = beta if beta is not None else n_slices * 0.125
    model = HubbardModel(
        SquareLattice(lx, ly), u=u, beta=beta, n_slices=n_slices
    )
    rng = np.random.default_rng(seed)
    field = HSField.random(n_slices, model.n_sites, rng)
    factory = BMatrixFactory(model)
    engine = GreensFunctionEngine(
        factory, field, method=method, cluster_size=cluster, profiler=profiler
    )
    return factory, field, engine


def format_table(header, rows) -> str:
    """Fixed-width text table."""
    widths = [
        max(len(str(header[c])), *(len(str(r[c])) for r in rows))
        for c in range(len(header))
    ]

    def fmt(row):
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))

    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
