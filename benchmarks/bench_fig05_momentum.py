"""Figure 5: <n_k> along (0,0) -> (pi,pi) -> (pi,0) -> (0,0) by lattice size.

The paper plots the spin-averaged momentum distribution of the
half-filled U = 2 Hubbard model at beta = 32 for lattices from 16x16 up
to 32x32, showing a sharp Fermi surface crossing near the middle of the
(0,0) -> (pi,pi) segment and the resolution gain of larger lattices.

Bench scale: 4x4 / 6x6 / 8x8 at beta = 4 with short runs. Asserted
shape: n(0,0) ~ 1 and n(pi,pi) ~ 0 with a crossing through ~0.5 in
between, on every size; larger lattices resolve strictly more path
points.
"""

import numpy as np
import pytest

from bench_common import format_table
from repro import HubbardModel, Simulation, SquareLattice, symmetry_path

SIZES = [4, 6, 8]
BETA = 4.0
SWEEPS = (10, 30)


def _run(size: int):
    lat = SquareLattice(size, size)
    model = HubbardModel(lat, u=2.0, beta=BETA, n_slices=32)
    sim = Simulation(model, seed=size, cluster_size=8)
    res = sim.run(warmup_sweeps=SWEEPS[0], measurement_sweeps=SWEEPS[1])
    nk = np.asarray(res.observables["momentum_distribution"].mean)
    return lat, nk


def test_fig5_momentum_along_path(benchmark, report):
    sections = []
    path_lengths = {}
    for size in SIZES:
        lat, nk = _run(size)
        idx, arc, kpts = symmetry_path(lat)
        path_lengths[size] = len(idx)
        rows = [
            [f"{arc[j]:.3f}", f"({kpts[j][0]:+.2f},{kpts[j][1]:+.2f})",
             f"{nk[idx[j]]:.4f}"]
            for j in range(len(idx))
        ]
        sections.append(
            f"# {size}x{size}\n"
            + format_table(["arc", "k", "<n_k>"], rows)
        )

        # paper shape: filled at Gamma, empty at (pi,pi), FS in between
        assert nk[lat.index(0, 0)] > 0.85, size
        assert nk[lat.index(size // 2, size // 2)] < 0.15, size
        seg = [
            nk[lat.index(m, m)] for m in range(size // 2 + 1)
        ]  # along (0,0) -> (pi,pi)
        assert all(b <= a + 0.05 for a, b in zip(seg, seg[1:])), (
            "monotone decrease along Gamma -> (pi,pi)", size, seg,
        )
        crossings = [
            1 for a, b in zip(seg, seg[1:]) if (a - 0.5) * (b - 0.5) <= 0
        ]
        assert crossings, ("no Fermi surface crossing found", size, seg)

    report("fig05_momentum", "\n\n".join(sections))

    # resolution claim: bigger lattices resolve more path momenta
    assert path_lengths[8] > path_lengths[6] > path_lengths[4]

    benchmark(_run, 4)
