"""Checkerboard kinetic fast-path benchmark: structured vs dense.

Times the two B-matrix hot kernels — the Green's-function wrap and the
cluster product — through the numpy backend under both kinetic modes on
L x L lattices, and emits ``benchmarks/results/BENCH_checkerboard.json``
(and a tracked copy at the repo root) with:

* per-size wall seconds for the dense GEMM pipeline
  (``kinetic="exact"``) and the blocked bond-group rotation passes
  (``kinetic="checkerboard"``), min-of-repeats,
* the structured-over-dense speedup per kernel per size. The ISSUE
  acceptance bar is >= 2x for both kernels at 16x16 (the blocked
  batched-GEMM representation typically lands near 2.7x wrap / 3.4x
  cluster there, and grows with N since the dense kernels are O(N^2)
  per column against the fast path's O(N (lx + ly))),
* the max |structured - dense| wrap deviation at the smallest size — a
  cheap guard that the fast path is applying the *same* operator up to
  the documented O(dtau^2) split.

Standalone on purpose (not a pytest-benchmark case): CI runs it directly
to publish the JSON artifact. ``--quick`` shrinks repeats and drops the
24x24 size for a CI smoke leg; the acceptance bar still applies at
16x16.

Usage::

    PYTHONPATH=src python benchmarks/bench_checkerboard.py --quick
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
ROOT_COPY = Path(__file__).parents[1] / "BENCH_checkerboard.json"

#: ISSUE acceptance: the structured path must beat the dense GEMMs by
#: at least this factor for both kernels on the 16x16 workload.
MIN_SPEEDUP = 2.0
BAR_SIZE = 16


def _bound_backend(size, kinetic):
    from repro import BMatrixFactory, HubbardModel, SquareLattice
    from repro.backends import get_backend

    model = HubbardModel(
        SquareLattice(size, size), u=4.0, beta=2.0, n_slices=16
    )
    factory = BMatrixFactory(model, kinetic=kinetic)
    return get_backend("numpy").bind(factory)


def _time_kernel(fn, repeats):
    """Min-of-repeats wall seconds (min is robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_size(size, repeats, inner) -> dict:
    """Wrap + cluster timings for both kinetic modes at one size."""
    import numpy as np

    rng = np.random.default_rng(size)
    n = size * size
    g = rng.standard_normal((n, n))
    v = np.exp(0.3 * rng.standard_normal(n))
    vs = [np.exp(0.3 * rng.standard_normal(n)) for _ in range(8)]

    out = {"size": size, "n_sites": n}
    wraps = {}
    for kinetic in ("exact", "checkerboard"):
        backend = _bound_backend(size, kinetic)

        def do_wrap():
            h = g
            for _ in range(inner):
                h = backend.wrap(h, v)
            return h

        def do_cluster():
            for _ in range(inner):
                backend.cluster_product(vs)

        wraps[kinetic] = backend.wrap(g, v)
        out[kinetic] = {
            "wrap_seconds": _time_kernel(do_wrap, repeats),
            "cluster_seconds": _time_kernel(do_cluster, repeats),
        }
    out["wrap_speedup"] = (
        out["exact"]["wrap_seconds"] / out["checkerboard"]["wrap_seconds"]
    )
    out["cluster_speedup"] = (
        out["exact"]["cluster_seconds"]
        / out["checkerboard"]["cluster_seconds"]
    )
    # One-wrap deviation between the modes: bounded by the split's
    # O(dtau^2) operator distance scaled by the workload.
    import numpy as np

    out["wrap_deviation"] = float(
        np.max(np.abs(wraps["exact"] - wraps["checkerboard"]))
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-scale repeats and sizes {8, 16} instead of {8, 16, 24}",
    )
    parser.add_argument(
        "--output", type=Path,
        default=RESULTS_DIR / "BENCH_checkerboard.json",
    )
    parser.add_argument(
        "--no-root-copy", action="store_true",
        help="skip refreshing the tracked copy at the repo root",
    )
    args = parser.parse_args(argv)

    if args.quick:
        sizes, repeats, inner = (8, 16), 3, 4
    else:
        sizes, repeats, inner = (8, 16, 24), 5, 10

    results = []
    for size in sizes:
        r = bench_size(size, repeats, inner)
        results.append(r)
        print(
            f"{size}x{size}: wrap {r['wrap_speedup']:.2f}x, "
            f"cluster {r['cluster_speedup']:.2f}x "
            f"(dense wrap {r['exact']['wrap_seconds'] * 1e3:.2f} ms, "
            f"structured {r['checkerboard']['wrap_seconds'] * 1e3:.2f} ms; "
            f"deviation {r['wrap_deviation']:.2e})"
        )

    bar = next((r for r in results if r["size"] == BAR_SIZE), None)
    speedup_ok = bar is not None and (
        bar["wrap_speedup"] >= MIN_SPEEDUP
        and bar["cluster_speedup"] >= MIN_SPEEDUP
    )
    if bar is None:
        print(f"WARNING: no {BAR_SIZE}x{BAR_SIZE} leg ran", file=sys.stderr)
    elif not speedup_ok:
        print(
            f"WARNING: structured path below the {MIN_SPEEDUP}x bar at "
            f"{BAR_SIZE}x{BAR_SIZE}",
            file=sys.stderr,
        )

    doc = {
        "quick": args.quick,
        "workload": {
            "u": 4.0,
            "beta": 2.0,
            "n_slices": 16,
            "backend": "numpy",
            "cluster_slices": 8,
            "inner_iterations": inner,
            "repeats": repeats,
        },
        "sizes": results,
        "min_speedup": MIN_SPEEDUP,
        "bar_size": BAR_SIZE,
        "speedup_ok": speedup_ok,
    }
    args.output.parent.mkdir(exist_ok=True)
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    if not args.no_root_copy:
        shutil.copyfile(args.output, ROOT_COPY)
        print(f"wrote {ROOT_COPY}")
    return 0 if speedup_ok else 1


if __name__ == "__main__":
    sys.exit(main())
