"""Figure 6: <n_k> over the full Brillouin zone, small vs large lattice.

The paper contrasts a 12x12 contour map against 32x32 to show the
resolution gain. Bench scale contrasts 4x4 against 8x8; the artifact is
the text-rendered k-grid of <n_k> for both, and the assertions check the
map's C4 point-group symmetry and the fourfold increase in k-points.
"""

import numpy as np
import pytest

from bench_common import format_table
from repro import HubbardModel, Simulation, SquareLattice
from repro.lattice import BrillouinZone

SIZES = [4, 8]


def _run(size: int) -> np.ndarray:
    lat = SquareLattice(size, size)
    model = HubbardModel(lat, u=2.0, beta=4.0, n_slices=32)
    sim = Simulation(model, seed=40 + size, cluster_size=8)
    res = sim.run(warmup_sweeps=10, measurement_sweeps=30)
    return np.asarray(res.observables["momentum_distribution"].mean)


def _grid_text(lat: SquareLattice, nk: np.ndarray) -> str:
    bz = BrillouinZone(lat)
    grid = bz.grid_values(nk)
    kx, ky = bz.grid_axes()
    header = ["ky\\kx"] + [f"{k:+.2f}" for k in kx]
    rows = [
        [f"{ky[i]:+.2f}"] + [f"{grid[i, j]:.3f}" for j in range(len(kx))]
        for i in range(len(ky))
    ]
    return format_table(header, rows)


def test_fig6_contour_maps(benchmark, report):
    sections = []
    grids = {}
    for size in SIZES:
        lat = SquareLattice(size, size)
        nk = _run(size)
        grids[size] = nk
        sections.append(f"# {size}x{size} <n_k> grid\n" + _grid_text(lat, nk))

        # C4 symmetry of the map: n(kx, ky) = n(ky, kx) = n(-kx, ky)
        for nx in range(size):
            for ny in range(size):
                a = nk[lat.index(nx, ny)]
                assert nk[lat.index(ny, nx)] == pytest.approx(a, abs=0.08)
                assert nk[lat.index(-nx, ny)] == pytest.approx(a, abs=0.08)

        # the map must span filled to empty
        assert nk.max() > 0.85 and nk.min() < 0.15

    report("fig06_contour", "\n\n".join(sections))

    # resolution: the large lattice has 4x the k-points of the small one
    assert grids[8].size == 4 * grids[4].size

    benchmark(_run, 4)
